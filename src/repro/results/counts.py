"""The :class:`Counts` histogram.

Keys are bitstrings over *classical bits* in clbit-index order, with clbit 0
as the **leftmost** character — matching the paper's ``q0q1q2`` table labels
(see DESIGN.md §3).  Counts supports the manipulations the assertion
machinery needs: marginalisation, post-selection on specific bit values,
conversion to probabilities and distribution distances.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError


class Counts(Dict[str, int]):
    """A histogram mapping classical bitstrings to shot counts.

    Parameters
    ----------
    data:
        Mapping of bitstring -> non-negative count.  All keys must have equal
        length.
    """

    def __init__(self, data: Optional[Mapping[str, int]] = None) -> None:
        super().__init__()
        if data:
            width = None
            for key, value in data.items():
                if not isinstance(key, str) or any(c not in "01" for c in key):
                    raise AnalysisError(f"invalid bitstring key {key!r}")
                if width is None:
                    width = len(key)
                elif len(key) != width:
                    raise AnalysisError(
                        f"inconsistent key widths: {len(key)} vs {width}"
                    )
                count = int(value)
                if count < 0:
                    raise AnalysisError(f"negative count {value} for {key!r}")
                if count:
                    self[key] = self.get(key, 0) + count

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Return the bitstring width (0 for an empty histogram)."""
        for key in self:
            return len(key)
        return 0

    @property
    def shots(self) -> int:
        """Return the total number of shots."""
        return sum(self.values())

    def probabilities(self) -> Dict[str, float]:
        """Return the normalised distribution (empty dict if no shots)."""
        total = self.shots
        if total == 0:
            return {}
        return {key: count / total for key, count in sorted(self.items())}

    def probability_of(self, key: str) -> float:
        """Return the empirical probability of one bitstring."""
        total = self.shots
        if total == 0:
            return 0.0
        return self.get(key, 0) / total

    def most_frequent(self) -> str:
        """Return the most frequent bitstring (ties broken lexically)."""
        if not self:
            raise AnalysisError("empty counts have no most-frequent key")
        return max(sorted(self), key=lambda k: self[k])

    # ------------------------------------------------------------------
    # Bit manipulation
    # ------------------------------------------------------------------

    def marginal(self, bits: Sequence[int]) -> "Counts":
        """Return counts over only the given bit positions (in given order).

        ``bits`` are positions into the bitstring (clbit indices).
        """
        width = self.num_bits
        for b in bits:
            if not 0 <= b < width:
                raise AnalysisError(f"bit position {b} out of range [0, {width})")
        out: Dict[str, int] = {}
        for key, count in self.items():
            sub = "".join(key[b] for b in bits)
            out[sub] = out.get(sub, 0) + count
        return Counts(out)

    def postselect(self, conditions: Mapping[int, int]) -> "Counts":
        """Keep only shots where bit ``pos`` equals ``value`` for all pairs.

        The selected bit positions remain in the returned keys; use
        :meth:`marginal` afterwards to drop them.  This is the software
        analogue of QUIRK's post-selection operator and the filtering step
        used in the paper's hardware experiments (§4).
        """
        width = self.num_bits
        for pos, value in conditions.items():
            if not 0 <= pos < width:
                raise AnalysisError(f"bit position {pos} out of range [0, {width})")
            if value not in (0, 1):
                raise AnalysisError(f"condition value must be 0 or 1, got {value}")
        out: Dict[str, int] = {}
        for key, count in self.items():
            if all(key[pos] == str(value) for pos, value in conditions.items()):
                out[key] = count
        return Counts(out)

    def without_bits(self, bits: Sequence[int]) -> "Counts":
        """Return counts with the given bit positions removed."""
        drop = set(bits)
        keep = [b for b in range(self.num_bits) if b not in drop]
        return self.marginal(keep)

    def merged_with(self, other: "Counts") -> "Counts":
        """Return the element-wise sum of two histograms of equal width."""
        if self and other and self.num_bits != other.num_bits:
            raise AnalysisError(
                f"cannot merge counts of widths {self.num_bits} and {other.num_bits}"
            )
        out = dict(self)
        for key, count in other.items():
            out[key] = out.get(key, 0) + count
        return Counts(out)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def total_variation_distance(self, other: "Counts") -> float:
        """Return the total-variation distance to another histogram."""
        p = self.probabilities()
        q = other.probabilities()
        keys = set(p) | set(q)
        return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)

    def hellinger_distance(self, other: "Counts") -> float:
        """Return the Hellinger distance to another histogram."""
        p = self.probabilities()
        q = other.probabilities()
        keys = set(p) | set(q)
        s = sum(
            (math.sqrt(p.get(k, 0.0)) - math.sqrt(q.get(k, 0.0))) ** 2 for k in keys
        )
        return math.sqrt(0.5 * s)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v}" for k, v in sorted(self.items()))
        return f"Counts({{{inner}}})"


def counts_from_probabilities(
    probabilities: Mapping[str, float],
    shots: int,
    rng: Optional[np.random.Generator] = None,
) -> Counts:
    """Sample a :class:`Counts` histogram from an exact distribution.

    Parameters
    ----------
    probabilities:
        Mapping bitstring -> probability; must sum to ~1.
    shots:
        Number of samples to draw.  If ``rng`` is ``None`` the *expected*
        counts are returned instead (rounded, preserving the total).
    rng:
        Source of randomness for multinomial sampling.
    """
    if shots < 0:
        raise AnalysisError(f"shots must be non-negative, got {shots}")
    keys = sorted(probabilities)
    probs = np.array([probabilities[k] for k in keys], dtype=float)
    if probs.size == 0:
        return Counts({})
    total = probs.sum()
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise AnalysisError(f"probabilities sum to {total}, expected 1")
    probs = probs / total
    if rng is None:
        # Deterministic expected counts with largest-remainder rounding.
        raw = probs * shots
        floor = np.floor(raw).astype(int)
        remainder = shots - int(floor.sum())
        order = np.argsort(raw - floor)[::-1]
        for i in range(remainder):
            floor[order[i]] += 1
        values = floor
    else:
        values = rng.multinomial(shots, probs)
    return Counts({k: int(v) for k, v in zip(keys, values) if v})
