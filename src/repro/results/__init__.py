"""Measurement results: bitstring histograms and run metadata."""

from repro.results.counts import Counts, counts_from_probabilities
from repro.results.result import Result

__all__ = ["Counts", "Result", "counts_from_probabilities"]
