"""State and distribution analysis utilities."""

from repro.analysis.states import (
    concurrence,
    entanglement_entropy,
    is_maximally_entangled_pair,
    partial_trace,
    pauli_expectation,
    purity,
    schmidt_coefficients,
    state_fidelity,
    von_neumann_entropy,
)
from repro.analysis.statistics import (
    chi_square_contingency,
    chi_square_goodness_of_fit,
    wilson_interval,
)
from repro.analysis.tomography import (
    measurement_bases_circuits,
    reconstruct_single_qubit_state,
)
from repro.analysis.mitigation import (
    calibrate_and_mitigate,
    calibration_circuits,
    confusion_matrix_from_calibration,
    mitigate_counts,
)

__all__ = [
    "calibrate_and_mitigate",
    "calibration_circuits",
    "chi_square_contingency",
    "chi_square_goodness_of_fit",
    "confusion_matrix_from_calibration",
    "mitigate_counts",
    "concurrence",
    "entanglement_entropy",
    "is_maximally_entangled_pair",
    "measurement_bases_circuits",
    "partial_trace",
    "pauli_expectation",
    "purity",
    "reconstruct_single_qubit_state",
    "schmidt_coefficients",
    "state_fidelity",
    "von_neumann_entropy",
    "wilson_interval",
]
