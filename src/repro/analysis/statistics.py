"""Statistical tests on measurement histograms.

These implement the machinery behind the *statistical assertions* baseline
(Huang & Martonosi, ISCA'19) that the paper positions itself against:
chi-square goodness-of-fit for classical/superposition assertions and a
chi-square contingency test for entanglement assertions.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.exceptions import AnalysisError
from repro.results.counts import Counts


def chi_square_goodness_of_fit(
    counts: Counts,
    expected_probabilities: Mapping[str, float],
) -> Tuple[float, float]:
    """Test whether ``counts`` matches an expected distribution.

    Returns ``(statistic, p_value)``.  Outcomes absent from
    ``expected_probabilities`` are treated as probability 0 (their presence
    in the data forces statistic = inf, p = 0).
    """
    total = counts.shots
    if total == 0:
        raise AnalysisError("cannot test an empty histogram")
    prob_sum = sum(expected_probabilities.values())
    if not math.isclose(prob_sum, 1.0, abs_tol=1e-6):
        raise AnalysisError(f"expected probabilities sum to {prob_sum}, not 1")
    impossible = [
        key
        for key in counts
        if expected_probabilities.get(key, 0.0) <= 0.0 and counts[key] > 0
    ]
    if impossible:
        return float("inf"), 0.0
    keys = sorted(k for k, p in expected_probabilities.items() if p > 0.0)
    if len(keys) < 2:
        # A point distribution with no impossible observations fits exactly
        # (zero degrees of freedom).
        return 0.0, 1.0
    observed = np.array([counts.get(k, 0) for k in keys], dtype=float)
    expected = np.array(
        [expected_probabilities[k] * total for k in keys], dtype=float
    )
    statistic, p_value = stats.chisquare(observed, expected)
    return float(statistic), float(p_value)


def chi_square_contingency(
    counts: Counts, bit_a: int, bit_b: int
) -> Tuple[float, float]:
    """Test independence of two bits of the histogram.

    Returns ``(statistic, p_value)``.  A small p-value rejects independence,
    i.e. supports correlation (the statistical-assertion criterion for
    entanglement).  Degenerate tables (a bit is constant) return
    ``(0.0, 1.0)`` — a constant bit carries no correlation evidence.
    """
    table = np.zeros((2, 2), dtype=float)
    for key, value in counts.items():
        table[int(key[bit_a]), int(key[bit_b])] += value
    if counts.shots == 0:
        raise AnalysisError("cannot test an empty histogram")
    if (table.sum(axis=0) == 0).any() or (table.sum(axis=1) == 0).any():
        return 0.0, 1.0
    statistic, p_value, _, _ = stats.chi2_contingency(table, correction=False)
    return float(statistic), float(p_value)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Return the Wilson score interval for a binomial proportion.

    Used when reporting assertion-error rates with uncertainty.
    """
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if not 0 <= successes <= trials:
        raise AnalysisError(f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must lie in (0, 1)")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
