"""Readout-error mitigation by confusion-matrix inversion.

A classical post-processing baseline to compare against the paper's
assertion-based filtering (§4): calibrate per-qubit confusion matrices by
preparing and measuring basis states, then unfold measured histograms
through the inverted tensor-product confusion matrix.

The comparison is instructive because the two techniques attack different
error classes: mitigation corrects *measurement misassignment* in
expectation (keeping all shots, but only fixing readout), while assertion
filtering discards flagged shots and also removes *gate/state* errors the
ancilla witnessed.  The bench ``benchmarks/bench_mitigation_comparison.py``
quantifies this on the Table 1/2 workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import AnalysisError
from repro.results.counts import Counts


def calibration_circuits(qubits: Sequence[int], num_qubits: int) -> Dict[str, QuantumCircuit]:
    """Return the 2^k basis-state preparation circuits for calibration.

    Parameters
    ----------
    qubits:
        The physical qubits whose readout will be calibrated.
    num_qubits:
        Total circuit width (so physical indices stay valid).

    Returns
    -------
    Mapping from the prepared bitstring (over ``qubits``, in order) to the
    circuit that prepares and measures it.
    """
    qubits = [int(q) for q in qubits]
    if len(set(qubits)) != len(qubits):
        raise AnalysisError(f"duplicate qubits {qubits}")
    if len(qubits) > 10:
        raise AnalysisError(
            "full calibration beyond 10 qubits is impractical (2^k circuits); "
            "calibrate per qubit instead"
        )
    out: Dict[str, QuantumCircuit] = {}
    for index in range(2 ** len(qubits)):
        label = format(index, f"0{len(qubits)}b")
        circuit = QuantumCircuit(num_qubits, len(qubits), name=f"cal_{label}")
        for position, qubit in enumerate(qubits):
            if label[position] == "1":
                circuit.x(qubit)
        for position, qubit in enumerate(qubits):
            circuit.measure(qubit, position)
        out[label] = circuit
    return out


def confusion_matrix_from_calibration(
    calibration_counts: Dict[str, Counts]
) -> np.ndarray:
    """Build the full assignment matrix from calibration runs.

    ``matrix[measured_index, prepared_index]`` is the estimated probability
    of reading ``measured`` when ``prepared`` was the true state.
    """
    if not calibration_counts:
        raise AnalysisError("no calibration data")
    width = len(next(iter(calibration_counts)))
    dim = 2 ** width
    if len(calibration_counts) != dim:
        raise AnalysisError(
            f"calibration needs all {dim} basis states, got "
            f"{len(calibration_counts)}"
        )
    matrix = np.zeros((dim, dim))
    for prepared, counts in calibration_counts.items():
        total = counts.shots
        if total == 0:
            raise AnalysisError(f"calibration state {prepared!r} has no shots")
        col = int(prepared, 2)
        for measured, value in counts.items():
            matrix[int(measured, 2), col] = value / total
    return matrix


def mitigate_counts(counts: Counts, confusion: np.ndarray) -> Dict[str, float]:
    """Unfold ``counts`` through the inverse confusion matrix.

    Returns a *quasi-probability* distribution clipped to the physical
    simplex (negative entries zeroed, renormalised) — the standard
    least-disruptive projection.
    """
    width = counts.num_bits
    dim = 2 ** width
    if confusion.shape != (dim, dim):
        raise AnalysisError(
            f"confusion matrix shape {confusion.shape} does not match "
            f"{width}-bit counts"
        )
    observed = np.zeros(dim)
    total = counts.shots
    if total == 0:
        raise AnalysisError("cannot mitigate an empty histogram")
    for key, value in counts.items():
        observed[int(key, 2)] = value / total
    try:
        unfolded = np.linalg.solve(confusion, observed)
    except np.linalg.LinAlgError as exc:
        raise AnalysisError("confusion matrix is singular") from exc
    clipped = np.clip(unfolded, 0.0, None)
    norm = clipped.sum()
    if norm <= 0:
        raise AnalysisError("mitigation produced an empty distribution")
    clipped /= norm
    return {
        format(index, f"0{width}b"): float(p)
        for index, p in enumerate(clipped)
        if p > 1e-12
    }


def calibrate_and_mitigate(
    backend,
    qubits: Sequence[int],
    num_qubits: int,
    counts: Counts,
    shots: int = 4096,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """One-call helper: calibrate on ``backend`` then mitigate ``counts``.

    ``counts`` must be keyed over ``qubits`` in the given order (as produced
    by measuring them into clbits 0..k-1).
    """
    circuits = calibration_circuits(qubits, num_qubits)
    calibration = {
        label: backend.run(circuit, shots=shots, seed=seed).counts
        for label, circuit in circuits.items()
    }
    confusion = confusion_matrix_from_calibration(calibration)
    return mitigate_counts(counts, confusion)
