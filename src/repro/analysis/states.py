"""Quantum-state analysis: fidelity, entropies, entanglement measures.

Used by the test suite to verify the paper's §3 claims quantitatively —
e.g. that the entanglement-assertion ancilla *disentangles* from the tested
pair (entanglement entropy of the ancilla bipartition returns to 0) and
that a failed classical assertion leaves the tested qubit in a classical
state (purity of the reduced state is 1 and it is diagonal).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple, Union

import numpy as np

from repro.exceptions import AnalysisError

StateLike = Union[np.ndarray, "object"]


def _as_density(state: StateLike) -> np.ndarray:
    """Coerce a statevector/Statevector/DensityMatrix/ndarray to a DM."""
    data = getattr(state, "data", state)
    data = np.asarray(data, dtype=complex)
    if data.ndim == 1:
        return np.outer(data, data.conj())
    if data.ndim == 2 and data.shape[0] == data.shape[1]:
        return data
    raise AnalysisError(f"cannot interpret shape {data.shape} as a quantum state")


def _num_qubits(dim: int) -> int:
    n = int(math.log2(dim)) if dim else 0
    if 2 ** n != dim:
        raise AnalysisError(f"dimension {dim} is not a power of two")
    return n


def state_fidelity(a: StateLike, b: StateLike) -> float:
    """Return the Uhlmann fidelity ``F(a, b)`` in [0, 1].

    For two pure states this reduces to ``|<a|b>|^2``.
    """
    rho = _as_density(a)
    sigma = _as_density(b)
    if rho.shape != sigma.shape:
        raise AnalysisError(f"state dimensions differ: {rho.shape} vs {sigma.shape}")
    # F = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2 via eigen-decomposition.
    vals, vecs = np.linalg.eigh(rho)
    vals = np.clip(vals, 0.0, None)
    sqrt_rho = (vecs * np.sqrt(vals)) @ vecs.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    eigenvalues = np.linalg.eigvalsh(inner)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    fidelity = float(np.sum(np.sqrt(eigenvalues)) ** 2)
    return min(1.0, max(0.0, fidelity))


def purity(state: StateLike) -> float:
    """Return ``Tr(rho^2)``."""
    rho = _as_density(state)
    return float(np.real(np.trace(rho @ rho)))


def partial_trace(state: StateLike, keep: Sequence[int]) -> np.ndarray:
    """Trace out all qubits except ``keep`` (returned in ``keep`` order).

    Follows the library convention: qubit 0 is the most-significant index
    bit.
    """
    rho = _as_density(state)
    n = _num_qubits(rho.shape[0])
    keep = list(keep)
    for q in keep:
        if not 0 <= q < n:
            raise AnalysisError(f"qubit {q} out of range for {n}-qubit state")
    if len(set(keep)) != len(keep):
        raise AnalysisError(f"duplicate qubits in keep={keep}")
    tensor = rho.reshape((2,) * (2 * n))
    traced = [q for q in range(n) if q not in keep]
    # Contract each traced qubit's row axis with its column axis.
    for q in sorted(traced, reverse=True):
        current_n = tensor.ndim // 2
        tensor = np.trace(tensor, axis1=q, axis2=current_n + q)
    # Axes now follow the original relative order of kept qubits; permute to
    # the requested order.
    current_order = sorted(keep)
    k = len(keep)
    perm = [current_order.index(q) for q in keep]
    full_perm = perm + [k + p for p in perm]
    tensor = tensor.transpose(full_perm)
    dim = 2 ** k
    return tensor.reshape(dim, dim)


def von_neumann_entropy(state: StateLike, base: float = 2.0) -> float:
    """Return ``S(rho) = -Tr(rho log rho)``."""
    rho = _as_density(state)
    eigenvalues = np.linalg.eigvalsh(rho)
    eigenvalues = np.clip(np.real(eigenvalues), 0.0, 1.0)
    entropy = 0.0
    for value in eigenvalues:
        if value > 1e-14:
            entropy -= value * math.log(value, base)
    return max(0.0, entropy)


def entanglement_entropy(state: StateLike, subsystem: Sequence[int]) -> float:
    """Return the entropy of the reduced state on ``subsystem``.

    Zero iff the subsystem is unentangled from the rest (for pure global
    states) — the test the paper's proofs make about assertion ancillas.
    """
    reduced = partial_trace(state, list(subsystem))
    return von_neumann_entropy(reduced)


def schmidt_coefficients(
    statevector: np.ndarray, subsystem: Sequence[int]
) -> np.ndarray:
    """Return the Schmidt coefficients across the given bipartition.

    Only defined for pure states (1-D input).
    """
    vec = np.asarray(getattr(statevector, "data", statevector), dtype=complex)
    if vec.ndim != 1:
        raise AnalysisError("Schmidt decomposition requires a pure statevector")
    n = _num_qubits(vec.shape[0])
    subsystem = list(subsystem)
    rest = [q for q in range(n) if q not in subsystem]
    tensor = vec.reshape((2,) * n)
    tensor = tensor.transpose(subsystem + rest)
    matrix = tensor.reshape(2 ** len(subsystem), 2 ** len(rest))
    singular_values = np.linalg.svd(matrix, compute_uv=False)
    return singular_values[singular_values > 1e-12]


def concurrence(state: StateLike) -> float:
    """Return the Wootters concurrence of a 2-qubit state (0 = separable)."""
    rho = _as_density(state)
    if rho.shape != (4, 4):
        raise AnalysisError("concurrence is defined for 2-qubit states")
    sigma_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    spin_flip = np.kron(sigma_y, sigma_y)
    rho_tilde = spin_flip @ rho.conj() @ spin_flip
    eigenvalues = np.linalg.eigvals(rho @ rho_tilde)
    roots = np.sort(np.sqrt(np.clip(np.real(eigenvalues), 0.0, None)))[::-1]
    return max(0.0, float(roots[0] - roots[1] - roots[2] - roots[3]))


def is_maximally_entangled_pair(
    state: StateLike, qubits: Tuple[int, int] = (0, 1), atol: float = 1e-8
) -> bool:
    """Return True if the reduced 2-qubit state is maximally entangled."""
    reduced = partial_trace(state, list(qubits))
    return concurrence(reduced) > 1.0 - atol


_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_expectation(state: StateLike, pauli_string: str) -> float:
    """Return ``<P>`` for a Pauli string like ``"ZZI"`` (qubit 0 first)."""
    rho = _as_density(state)
    n = _num_qubits(rho.shape[0])
    if len(pauli_string) != n:
        raise AnalysisError(
            f"Pauli string length {len(pauli_string)} does not match "
            f"{n} qubits"
        )
    operator = np.array([[1.0 + 0.0j]])
    for char in pauli_string.upper():
        if char not in _PAULI_MATRICES:
            raise AnalysisError(f"unknown Pauli label {char!r}")
        operator = np.kron(operator, _PAULI_MATRICES[char])
    return float(np.real(np.trace(operator @ rho)))
