"""Single-qubit state tomography by linear inversion.

Supports the baseline comparison: statistical assertions need full
distributions of the qubit under test, which in practice means tomography in
several bases — each basis costing a separate (program-halting) batch of
executions.  The dynamic assertions need none of this, which is the paper's
headline advantage.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import AnalysisError
from repro.results.counts import Counts


def measurement_bases_circuits(
    base_circuit: QuantumCircuit, qubit: int
) -> Dict[str, QuantumCircuit]:
    """Return X/Y/Z-basis measurement variants of ``base_circuit``.

    Each variant appends the basis-change gates and a measurement of
    ``qubit`` into a fresh classical bit, truncating the program there —
    exactly how a statistical-assertion harness instruments a program.
    """
    if not 0 <= qubit < base_circuit.num_qubits:
        raise AnalysisError(
            f"qubit {qubit} out of range for {base_circuit.num_qubits}-qubit circuit"
        )
    variants: Dict[str, QuantumCircuit] = {}
    for basis in ("z", "x", "y"):
        circuit = base_circuit.copy(name=f"{base_circuit.name}_tomo_{basis}")
        reg = circuit.add_clbits(1, name=f"tomo_{basis}_{len(circuit.cregs)}")
        if basis == "x":
            circuit.h(qubit)
        elif basis == "y":
            circuit.sdg(qubit)
            circuit.h(qubit)
        circuit.measure(qubit, reg[0])
        variants[basis] = circuit
    return variants


def reconstruct_single_qubit_state(
    basis_counts: Mapping[str, Counts],
    bit_position: int = -1,
) -> np.ndarray:
    """Reconstruct a 1-qubit density matrix from X/Y/Z basis counts.

    Parameters
    ----------
    basis_counts:
        Mapping with keys ``"x"``, ``"y"``, ``"z"`` to the counts of the
        corresponding basis measurement.
    bit_position:
        Which bit of each histogram key holds the tomography outcome
        (default: last).

    Returns
    -------
    The linear-inversion estimate ``rho = (I + <X> X + <Y> Y + <Z> Z) / 2``,
    projected back onto the physical (positive semidefinite) set.
    """
    expectations = {}
    for basis in ("x", "y", "z"):
        if basis not in basis_counts:
            raise AnalysisError(f"missing counts for basis {basis!r}")
        counts = basis_counts[basis]
        total = counts.shots
        if total == 0:
            raise AnalysisError(f"basis {basis!r} histogram is empty")
        ones = sum(
            value for key, value in counts.items() if key[bit_position] == "1"
        )
        expectations[basis] = 1.0 - 2.0 * ones / total
    pauli = {
        "x": np.array([[0, 1], [1, 0]], dtype=complex),
        "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
        "z": np.array([[1, 0], [0, -1]], dtype=complex),
    }
    rho = 0.5 * (
        np.eye(2, dtype=complex)
        + expectations["x"] * pauli["x"]
        + expectations["y"] * pauli["y"]
        + expectations["z"] * pauli["z"]
    )
    return _project_to_physical(rho)


def _project_to_physical(rho: np.ndarray) -> np.ndarray:
    """Clip negative eigenvalues and renormalise (Smolin-style projection)."""
    values, vectors = np.linalg.eigh(rho)
    values = np.clip(np.real(values), 0.0, None)
    total = values.sum()
    if total <= 0:
        raise AnalysisError("reconstructed state has no positive support")
    values = values / total
    return (vectors * values) @ vectors.conj().T
