#!/usr/bin/env python
"""Quickstart: dynamic runtime assertions in five minutes.

Reproduces the paper's three assertion types on small programs:

1. a classical-value assertion that *projects* a buggy superposition,
2. an entanglement assertion guarding a Bell pair,
3. a superposition assertion that distinguishes |+> from a classical state.

Run:  python examples/quickstart.py
"""

from repro import (
    AssertionInjector,
    QuantumCircuit,
    StatevectorBackend,
    library,
    postselect_passing,
)
from repro.core import evaluate_assertions

BACKEND = StatevectorBackend()


def demo_classical_assertion() -> None:
    """Paper §3.1 / Fig. 2: assert a qubit equals |0>."""
    print("=" * 64)
    print("1. Classical-value assertion (assert q == |0>)")
    print("=" * 64)
    # A "buggy" program: the qubit should be |0> but someone left an H in.
    program = QuantumCircuit(1, name="buggy_init")
    program.h(0)

    injector = AssertionInjector(program)
    injector.assert_classical(0, 0)
    print(injector.circuit.draw())

    result = BACKEND.run(injector.circuit, shots=4096, seed=1)
    report = evaluate_assertions(result.counts, injector.records)
    print(f"assertion error rate: {report.discard_fraction():.1%} "
          "(paper: |b|^2 = 50% for |+>)")
    print("passing shots leave the qubit projected to |0> — the paper's "
          "auto-correction property.\n")


def demo_entanglement_assertion() -> None:
    """Paper §3.2 / Fig. 3: assert two qubits form a Bell state."""
    print("=" * 64)
    print("2. Entanglement assertion (parity ancilla)")
    print("=" * 64)
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    print(injector.circuit.draw())

    result = BACKEND.run(injector.circuit, shots=4096, seed=2)
    filtered = postselect_passing(result.counts, injector.records)
    print(f"program outcomes after filtering: {dict(sorted(filtered.items()))}")
    print("only the Bell outcomes 00/11 survive; the ancilla never fired.\n")

    # Now the same with a bug: the CX was forgotten.
    buggy = QuantumCircuit(2, name="bell_missing_cx")
    buggy.h(0)
    injector = AssertionInjector(buggy)
    injector.assert_entangled([0, 1])
    injector.measure_program()
    result = BACKEND.run(injector.circuit, shots=4096, seed=3)
    report = evaluate_assertions(result.counts, injector.records)
    print(f"with a missing CX the assertion fires {report.discard_fraction():.1%} "
          "of the time -> bug detected at runtime.\n")


def demo_superposition_assertion() -> None:
    """Paper §3.3 / Fig. 5: assert a qubit is in |+>."""
    print("=" * 64)
    print("3. Superposition assertion (assert q == |+>)")
    print("=" * 64)
    for label, prep in [("|+> (correct)", "h"), ("|0> (bug: H missing)", None)]:
        program = QuantumCircuit(1, name="sup")
        if prep:
            program.h(0)
        injector = AssertionInjector(program)
        injector.assert_superposition(0)
        result = BACKEND.run(injector.circuit, shots=4096, seed=4)
        report = evaluate_assertions(result.counts, injector.records)
        print(f"input {label:22s} -> assertion error rate "
              f"{report.discard_fraction():5.1%}")
    print("(paper: 0% for |+>, exactly 50% for a classical input)\n")


def main() -> None:
    demo_classical_assertion()
    demo_entanglement_assertion()
    demo_superposition_assertion()
    print("Done. See examples/grover_debugging.py and "
          "examples/nisq_error_filtering.py for deeper scenarios.")


if __name__ == "__main__":
    main()
