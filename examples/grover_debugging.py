#!/usr/bin/env python
"""Debugging a Grover search with dynamic assertions.

The motivating workload class from Huang & Martonosi (ISCA'19), which the
paper builds on: amplitude-amplification programs start from a uniform
superposition, and a wrong initial layer (a classic off-by-one or X-for-H
bug) silently ruins the search.  Statistical assertions can catch it but
halt the program; the paper's dynamic assertions catch it *and let the
search finish in the same execution*.

This example:

1. runs a correct 3-qubit Grover search instrumented with |+> assertions
   after the initialisation layer — all assertions pass, the marked item
   wins;
2. injects a bug (one H replaced by X) — the corresponding assertion fires
   on ~half the shots; filtering the survivors shows what the bug did to
   the search;
3. compares with the statistical-assertion baseline, counting executions.

Run:  python examples/grover_debugging.py
"""

import math

from repro import AssertionInjector, QuantumCircuit, StatevectorBackend
from repro.core import evaluate_assertions
from repro.core.baseline import statistical_superposition_assertion

NUM_QUBITS = 3
MARKED = 0b101  # search target |101>
BACKEND = StatevectorBackend()
SHOTS = 4096


def initialization_layer(bug_on_qubit: int = -1) -> QuantumCircuit:
    """The H-layer; optionally replace one H with X (the injected bug)."""
    circuit = QuantumCircuit(NUM_QUBITS, name="grover_init")
    for q in range(NUM_QUBITS):
        if q == bug_on_qubit:
            circuit.x(q)  # BUG: should have been circuit.h(q)
        else:
            circuit.h(q)
    return circuit


def grover_iterations() -> QuantumCircuit:
    """The oracle + diffusion stages for the marked state."""
    from repro.circuits.library import _apply_diffusion, _apply_phase_flip

    circuit = QuantumCircuit(NUM_QUBITS, name="grover_body")
    optimal = max(1, math.floor(math.pi / 4.0 * math.sqrt(2 ** NUM_QUBITS)))
    for _ in range(optimal):
        _apply_phase_flip(circuit, NUM_QUBITS, MARKED)
        _apply_diffusion(circuit, NUM_QUBITS)
    return circuit


def run_instrumented(bug_on_qubit: int = -1) -> None:
    label = "correct" if bug_on_qubit < 0 else f"bug on qubit {bug_on_qubit}"
    print("-" * 64)
    print(f"Grover search ({label})")
    print("-" * 64)

    injector = AssertionInjector(initialization_layer(bug_on_qubit))
    injector.assert_uniform(range(NUM_QUBITS))   # dynamic |+> assertions
    injector.apply(grover_iterations())          # program continues in-line
    injector.measure_program()

    result = BACKEND.run(injector.circuit, shots=SHOTS, seed=42)
    report = evaluate_assertions(result.counts, injector.records)

    print(f"assertion pass rate : {report.pass_rate:6.1%}")
    for name, rate in report.per_assertion_error_rate.items():
        flag = "  <-- bug localised here" if rate > 0.1 else ""
        print(f"  {name:20s} error rate {rate:6.1%}{flag}")
    top = report.passing.most_frequent() if report.passing else "(none)"
    expected = format(MARKED, f"0{NUM_QUBITS}b")
    print(f"search result among passing shots: {top} "
          f"(expected {expected})")
    print(f"executions consumed : 1 batch of {SHOTS} shots "
          "(assertions checked inside the run)\n")


def compare_with_statistical_baseline() -> None:
    print("-" * 64)
    print("Baseline: statistical assertions (Huang & Martonosi, ISCA'19)")
    print("-" * 64)
    executions = 0
    for q in range(NUM_QUBITS):
        outcome = statistical_superposition_assertion(
            BACKEND, initialization_layer(bug_on_qubit=1), q,
            shots=SHOTS, seed=7,
        )
        executions += outcome.executions
        verdict = "pass" if outcome.passed else "FAIL"
        print(f"  qubit {q}: {verdict} (p = {outcome.p_value:.3g}) — "
              "program halted at the check")
    print(f"executions consumed : {executions} shots across "
          f"{NUM_QUBITS} dedicated truncated batches, none of which "
          "produced a search result.\n")


def main() -> None:
    run_instrumented(bug_on_qubit=-1)
    run_instrumented(bug_on_qubit=1)
    compare_with_statistical_baseline()


if __name__ == "__main__":
    main()
