#!/usr/bin/env python
"""Guarding quantum teleportation with layered dynamic assertions.

Teleportation is the canonical multi-stage protocol: prepare a Bell pair,
Bell-measure Alice's qubits, classically correct Bob's.  Each stage has a
natural assertion:

* after the Bell-pair preparation — an **entanglement assertion** on the
  shared pair (the resource the protocol consumes);
* after the corrections — a **state assertion** on Bob's qubit against the
  state that was sent (possible in a debugging harness where the input is
  known).

Because the assertions are dynamic, both checks live inside one execution
of the protocol, and the protocol's own output is still produced — the
exact capability the paper argues statistical assertions lack.

Run:  python examples/teleportation_assertions.py
"""

import math

from repro import AssertionInjector, QuantumCircuit, StatevectorBackend
from repro.core import evaluate_assertions

BACKEND = StatevectorBackend()
SHOTS = 4096

#: The state to teleport: cos(t/2)|0> + sin(t/2)|1>.
THETA = 1.1


def teleportation_with_assertions(break_bell_pair: bool = False):
    """Build the instrumented protocol; optionally sabotage the Bell pair."""
    # Stage 1: input state + Bell-pair preparation.
    stage1 = QuantumCircuit(3, 2, name="teleport_stage1")
    stage1.ry(THETA, 0)       # the payload on Alice's data qubit
    stage1.h(1)
    if not break_bell_pair:
        stage1.cx(1, 2)       # the entangled resource
    injector = AssertionInjector(stage1)

    # Assertion A: the shared pair must be entangled before we use it.
    injector.assert_entangled([1, 2], label="bell_resource")

    # Stage 2: Alice's Bell measurement + Bob's corrections.
    stage2 = QuantumCircuit(3, 2, name="teleport_stage2")
    stage2.cx(0, 1)
    stage2.h(0)
    stage2.measure([0, 1], [0, 1])
    stage2.x(2, condition=(1, 1))
    stage2.z(2, condition=(0, 1))
    injector.apply(stage2)

    # Assertion B: Bob's qubit must now hold the payload.
    injector.assert_state(2, THETA, 0.0, label="bob_payload")
    return injector


def run(label: str, break_bell_pair: bool) -> None:
    print("-" * 64)
    print(f"teleportation ({label})")
    print("-" * 64)
    injector = teleportation_with_assertions(break_bell_pair)
    result = BACKEND.run(injector.circuit, shots=SHOTS, seed=11)
    report = evaluate_assertions(result.counts, injector.records)
    for name, rate in report.per_assertion_error_rate.items():
        print(f"  {name:14s} error rate {rate:6.1%}")
    print(f"  overall pass rate  {report.pass_rate:6.1%}")
    expected_p1 = math.sin(THETA / 2.0) ** 2
    print(f"  (payload P(|1>) = {expected_p1:.3f}; with a broken resource "
          "the payload assertion's error rate rises toward the infidelity "
          "of whatever reached Bob)")
    print()


def main() -> None:
    run("correct protocol", break_bell_pair=False)
    run("sabotaged: Bell-pair CX missing", break_bell_pair=True)
    print("Note how the per-assertion error rates localise the failure to")
    print("the resource-preparation stage, within a single execution.")


if __name__ == "__main__":
    main()
