#!/usr/bin/env python
"""NISQ error filtering with assertion post-selection (paper §4).

Recreates the paper's hardware experiments on the calibrated ibmqx4 model:
Table 1 (classical assertion), Table 2 (entanglement assertion) and the
§4.3 superposition number, then sweeps the noise scale to show how the
filtering benefit behaves as devices get better or worse.

Run:  python examples/nisq_error_filtering.py
"""

from repro.experiments import (
    run_noise_sweep,
    run_sec43,
    run_table1,
    run_table2,
)


def main() -> None:
    print(run_table1().summary())
    print()
    print(run_table2().summary())
    print()
    print(run_sec43().summary())
    print()
    print(run_noise_sweep(scales=(0.5, 1.0, 2.0), shots=8192).summary())
    print()
    print("Reading: post-selecting on assertion ancillas keeps cutting the")
    print("error rate by a double-digit relative margin across the whole")
    print("noise range, at the cost of discarding the flagged shots.")


if __name__ == "__main__":
    main()
