#!/usr/bin/env python
"""Scaling assertion-guarded GHZ preparation to hundreds of qubits.

Everything in the paper's assertion toolkit is Clifford, so the stabilizer
engine runs the full instrumented pipeline at sizes no statevector
simulator can touch.  This example prepares GHZ(n) for n up to 256,
instruments it with pairwise entanglement assertions, and shows:

* the instrumentation overhead (ancillas, extra CNOTs, depth ratio),
* that the assertions stay silent on the correct circuit,
* that a single injected bit-flip trips them — and the per-pair error
  rates localise *where* the chain broke.

Run:  python examples/ghz_scaling.py
"""

import time

from repro import AssertionInjector, StabilizerBackend, library
from repro.core import evaluate_assertions

BACKEND = StabilizerBackend()
SHOTS = 128


def guarded_ghz(n: int, bug_at: int = -1) -> AssertionInjector:
    program = library.ghz_state(n)
    if bug_at >= 0:
        program.x(bug_at)  # injected fault on one qubit
    injector = AssertionInjector(program)
    injector.assert_entangled(list(range(n)), mode="pairwise")
    injector.measure_program()
    return injector


def scaling_table() -> None:
    print(f"{'n':>5} | {'ancillas':>8} | {'extra cx':>8} | "
          f"{'depth x':>7} | {'pass':>6} | {'sec':>6}")
    print("-" * 55)
    for n in (4, 16, 64, 256):
        injector = guarded_ghz(n)
        overhead = injector.overhead()
        start = time.perf_counter()
        result = BACKEND.run(injector.circuit, shots=SHOTS, seed=1)
        elapsed = time.perf_counter() - start
        report = evaluate_assertions(result.counts, injector.records)
        print(f"{n:>5} | {overhead['extra_qubits']:>8} | "
              f"{overhead['extra_cx']:>8} | {overhead['depth_ratio']:>7.2f} | "
              f"{report.pass_rate:>6.1%} | {elapsed:>6.2f}")
    print()


def fault_localisation(n: int = 32, bug_at: int = 11) -> None:
    print(f"injected X fault on qubit {bug_at} of GHZ({n}):")
    injector = guarded_ghz(n, bug_at=bug_at)
    result = BACKEND.run(injector.circuit, shots=SHOTS, seed=2)
    report = evaluate_assertions(result.counts, injector.records)
    firing = [name for name, rate in report.per_assertion_error_rate.items()
              if rate > 0.5]
    print(f"  assertions firing: {firing}")
    print("  (the two adjacent-pair parity checks around the faulty qubit")
    print("   fire deterministically; all others stay silent)")


def main() -> None:
    scaling_table()
    fault_localisation()


if __name__ == "__main__":
    main()
