#!/usr/bin/env python
"""Batched sweep execution through the ``repro.runtime`` job subsystem.

The paper's experiments are batch-shaped: the same instrumented circuit is
re-run across noise scales, shot counts and assertion variants.  This
example submits a whole sweep in one ``execute()`` call and shows what the
runtime does under the hood: backend lookup by name, transpile caching
keyed by circuit fingerprint, deduplication of identical jobs (simulate
once, re-sample counts per seed), and seed-stable parallel fan-out.

Run:  python examples/runtime_batching.py
"""

import time

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import TranspileCache, execute, get_backend, list_backends


def instrumented_ghz(n: int, mode: str):
    injector = AssertionInjector(library.ghz_state(n))
    injector.assert_entangled(list(range(n)), mode=mode)
    injector.measure_program()
    return injector.circuit


def main() -> None:
    print("registered backends:", ", ".join(list_backends()))
    print()

    # A 12-job sweep: 4 distinct circuits x 3 repetitions, one seed.
    circuits = [
        instrumented_ghz(n, mode) for n in (2, 3) for mode in ("pairwise", "single")
    ] * 3
    cache = TranspileCache()
    backend = get_backend("noisy:ibmqx4", cache=cache)

    start = time.perf_counter()
    jobs = execute(circuits, backend, shots=4096, seed=2020, max_workers=4)
    results = jobs.result()
    elapsed = time.perf_counter() - start

    print(f"{len(jobs)} jobs, {jobs.num_executed} actual simulations, "
          f"{elapsed:.3f}s wall clock")
    print(f"transpile cache: {cache.stats()}")
    print()
    for job, result in list(zip(jobs, results))[:4]:
        top = result.counts.most_frequent()
        print(f"  {job.job_id}: {job.circuit.name!r} -> "
              f"most frequent {top!r} ({result.counts[top]} / {result.shots})")
    print()

    # Same circuit, eight (shots, seed) points: one simulation, 7 re-samples,
    # each bit-identical to a dedicated backend.run with that seed.
    sweep = execute(
        [circuits[0]] * 8,
        backend,
        shots=[1024, 2048, 4096, 8192] * 2,
        seed=list(range(8)),
    )
    print("shot/seed sweep:", sweep)
    print("simulations executed:", sweep.num_executed)


if __name__ == "__main__":
    main()
