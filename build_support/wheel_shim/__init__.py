"""Minimal offline stand-in for the ``wheel`` distribution.

The execution environment has setuptools 65 but no ``wheel`` package, which
breaks PEP 660 editable installs (``pip install -e .``).  This package
implements exactly the surface setuptools' ``dist_info`` and
``editable_wheel`` commands use:

* :mod:`wheel_shim.wheelfile` — a RECORD-writing ZipFile (PEP 427 layout),
* :mod:`wheel_shim.bdist_wheel` — a distutils command providing
  ``get_tag()``, ``write_wheelfile()`` and ``egg2dist()`` for pure-Python
  projects.

``setup.py`` aliases this package as ``wheel`` on ``sys.path`` before
setuptools goes looking for it.  It is not a general wheel builder — only
what an editable install of this pure-Python project requires.
"""

__version__ = "0.1.0-offline-shim"
