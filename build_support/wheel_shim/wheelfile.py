"""A ZipFile that maintains the PEP 427 RECORD entry.

Only the behaviour setuptools' ``editable_wheel`` relies on is implemented:
``write``/``writestr`` record sha256 digests, ``write_files`` bulk-adds an
unpacked tree, and ``close`` appends the RECORD file.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile
from typing import List, Tuple


def _urlsafe_b64_nopad(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-mode wheel archive with automatic RECORD generation."""

    def __init__(self, file, mode: str = "r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        base = os.path.basename(str(file))
        if base.endswith(".whl"):
            base = base[:-4]
        name_version = "-".join(base.split("-")[:2])
        self.dist_info_path = f"{name_version}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._record_rows: List[Tuple[str, str, str]] = []
        self._record_written = False

    # -- recording wrappers -------------------------------------------

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        if isinstance(zinfo_or_arcname, zipfile.ZipInfo):
            arcname = zinfo_or_arcname.filename
        else:
            arcname = str(zinfo_or_arcname)
        if arcname == self.record_path:
            return
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = hashlib.sha256(data).digest()
        self._record_rows.append(
            (arcname, f"sha256={_urlsafe_b64_nopad(digest)}", str(len(data)))
        )

    def write(self, filename, arcname=None, *args, **kwargs):
        super().write(filename, arcname, *args, **kwargs)
        resolved = str(arcname if arcname is not None else filename)
        resolved = resolved.replace(os.sep, "/")
        if resolved == self.record_path:
            return
        with open(filename, "rb") as handle:
            data = handle.read()
        digest = hashlib.sha256(data).digest()
        self._record_rows.append(
            (resolved, f"sha256={_urlsafe_b64_nopad(digest)}", str(len(data)))
        )

    # -- setuptools entry points --------------------------------------

    def write_files(self, base_dir) -> None:
        """Add every file under ``base_dir`` (RECORD excluded) to the wheel."""
        base_dir = str(base_dir)
        collected = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname != self.record_path:
                    collected.append((path, arcname))
        for path, arcname in sorted(collected, key=lambda item: item[1]):
            self.write(path, arcname)

    def close(self) -> None:
        if self.mode == "w" and not self._record_written:
            self._record_written = True
            rows = list(self._record_rows) + [(self.record_path, "", "")]
            text = "".join(f"{name},{digest},{size}\n" for name, digest, size in rows)
            super().writestr(self.record_path, text)
        super().close()
