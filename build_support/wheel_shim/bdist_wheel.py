"""Minimal ``bdist_wheel`` distutils command for pure-Python projects.

Implements the three methods setuptools' ``dist_info`` / ``editable_wheel``
commands call — ``get_tag()``, ``write_wheelfile()`` and ``egg2dist()`` —
plus the distutils command protocol.  Full wheel *builds* (``run``) are out
of scope; editable installs never invoke them.
"""

from __future__ import annotations

import os
import shutil
from distutils.core import Command
from typing import Tuple


class bdist_wheel(Command):  # noqa: N801 - distutils command naming
    """Pure-Python (py3-none-any) wheel metadata support."""

    description = "offline shim for wheel metadata generation"
    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
    ]
    boolean_options = ["keep-temp"]

    def initialize_options(self) -> None:
        self.dist_dir = None
        self.keep_temp = False
        self.data_dir = None
        self.plat_name = None
        self.root_is_pure = True

    def finalize_options(self) -> None:
        if self.dist_dir is None:
            self.dist_dir = os.path.join(os.getcwd(), "dist")
        name = self.distribution.get_name()
        version = self.distribution.get_version()
        self.data_dir = f"{name}-{version}.data"

    def run(self) -> None:  # pragma: no cover - editable installs skip this
        raise RuntimeError(
            "the offline wheel shim does not build full wheels; use "
            "'pip install -e .' (editable) or 'python setup.py develop'"
        )

    # -- surface used by setuptools ------------------------------------

    def get_tag(self) -> Tuple[str, str, str]:
        """Return the wheel tag; this project is pure Python."""
        return ("py3", "none", "any")

    def write_wheelfile(
        self, wheelfile_base: str, generator: str = "wheel-shim (offline)"
    ) -> None:
        """Write the PEP 427 WHEEL metadata file into a dist-info dir."""
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {'-'.join(self.get_tag())}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)

    def egg2dist(self, egginfo_path: str, distinfo_path: str) -> None:
        """Convert an ``.egg-info`` directory into a ``.dist-info`` one."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)
        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        metadata = _read(pkg_info) if os.path.exists(pkg_info) else "Metadata-Version: 2.1\n"
        requires = os.path.join(egginfo_path, "requires.txt")
        if os.path.exists(requires) and "Requires-Dist:" not in metadata:
            metadata = _merge_requires(metadata, _read(requires))
        _write(os.path.join(distinfo_path, "METADATA"), metadata)
        for extra in ("entry_points.txt", "top_level.txt"):
            source = os.path.join(egginfo_path, extra)
            if os.path.exists(source):
                shutil.copy2(source, os.path.join(distinfo_path, extra))
        self.write_wheelfile(distinfo_path)
        # Real bdist_wheel consumes the egg-info dir; dist_info expects that.
        shutil.rmtree(egginfo_path, ignore_errors=True)


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _write(path: str, content: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


def _merge_requires(metadata: str, requires_text: str) -> str:
    """Fold egg-info ``requires.txt`` into METADATA Requires-Dist lines."""
    head, _, body = metadata.partition("\n\n")
    lines = []
    extra = None
    for raw in requires_text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1]
            # Sections may be "extra" or "extra:marker".
            extra, _, marker = section.partition(":")
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        requirement = line
        clauses = []
        if extra:
            clauses.append(f'extra == "{extra}"')
        if clauses:
            requirement = f"{requirement} ; {' and '.join(clauses)}"
        lines.append(f"Requires-Dist: {requirement}")
    if lines:
        head = head.rstrip("\n") + "\n" + "\n".join(lines) + "\n"
    return head + ("\n" + body if body else "\n")
