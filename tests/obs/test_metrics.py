"""MetricsRegistry: instruments, collectors, exposition, concurrency."""

import concurrent.futures
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", {"tier": "memory"})
        b = registry.counter("hits_total", {"tier": "memory"})
        c = registry.counter("hits_total", {"tier": "disk"})
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_gauge_set_add_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(2)
        assert gauge.value == 5
        live = registry.gauge("live", fn=lambda: 42)
        assert live.value == 42

    def test_gauge_callback_exception_reads_nan(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("broken", fn=lambda: 1 / 0)
        assert math.isnan(gauge.value)
        # NaN gauges are omitted, not rendered as garbage.
        assert "broken" not in registry.render_prometheus()
        assert registry.snapshot()["gauges"]["broken"] is None

    def test_histogram_snapshot_fields(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        for value in (0.1, 0.2, 0.3, 0.4):
            hist.observe(value)
        stats = hist.snapshot()
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(1.0)
        assert stats["min"] == pytest.approx(0.1)
        assert stats["max"] == pytest.approx(0.4)
        assert stats["mean"] == pytest.approx(0.25)
        assert stats["p50"] == pytest.approx(0.2)
        assert stats["p99"] == pytest.approx(0.4)

    def test_histogram_reservoir_is_bounded_but_totals_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wide", reservoir=16)
        for i in range(1000):
            hist.observe(float(i))
        stats = hist.snapshot()
        assert stats["count"] == 1000
        assert stats["sum"] == pytest.approx(sum(range(1000)))
        assert stats["min"] == 0.0 and stats["max"] == 999.0
        # percentiles come from the most recent 16 observations
        assert stats["p50"] >= 984.0

    def test_empty_histogram_snapshot(self):
        registry = MetricsRegistry()
        stats = registry.histogram("never").snapshot()
        assert stats["count"] == 0
        assert stats["mean"] is None and stats["p50"] is None


class TestCollectors:
    def test_collector_samples_land_in_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "pool",
            lambda: [
                ("pool_active", None, 2),
                ("pool_created_total", {"kind": "thread"}, 7, "counter"),
            ],
        )
        snap = registry.snapshot()
        assert snap["gauges"]["pool_active"] == 2
        assert snap["counters"]['pool_created_total{kind="thread"}'] == 7

    def test_collector_replaced_by_name(self):
        registry = MetricsRegistry()
        registry.register_collector("svc", lambda: [("x", None, 1)])
        registry.register_collector("svc", lambda: [("x", None, 9)])
        assert registry.snapshot()["gauges"]["x"] == 9

    def test_raising_collector_skipped_not_fatal(self):
        registry = MetricsRegistry()
        registry.register_collector("bad", lambda: 1 / 0)
        registry.register_collector("good", lambda: [("ok", None, 1)])
        snap = registry.snapshot()
        assert snap["gauges"]["ok"] == 1

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("gone", lambda: [("y", None, 1)])
        registry.unregister_collector("gone")
        assert "y" not in registry.snapshot()["gauges"]

    def test_non_numeric_sample_skipped(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "mixed", lambda: [("a", None, "nope"), ("b", None, 3)]
        )
        snap = registry.snapshot()
        assert "a" not in snap["gauges"]
        assert snap["gauges"]["b"] == 3


class TestPrometheusRendering:
    def test_families_typed_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total", help="b things").inc(3)
        registry.gauge("a_gauge", help="an a").set(1.5)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# HELP a_gauge an a" in lines
        assert "# TYPE a_gauge gauge" in lines
        assert "# TYPE b_total counter" in lines
        assert "a_gauge 1.5" in lines
        assert "b_total 3" in lines
        assert lines.index("# TYPE a_gauge gauge") < lines.index(
            "# TYPE b_total counter"
        )

    def test_histogram_rendered_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", {"op": "submit"})
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = registry.render_prometheus()
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{op="submit",quantile="0.5"} 2' in text
        assert 'lat_seconds_sum{op="submit"} 6' in text
        assert 'lat_seconds_count{op="submit"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", {"path": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'esc_total{path="a\\"b\\\\c"} 1' in text

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird name-total").inc()
        assert "weird_name_total 1" in registry.render_prometheus()


class TestDefaultRegistryWiring:
    def test_runtime_sources_registered_on_import(self):
        import repro.runtime  # noqa: F401  (registers the collectors)

        snap = DEFAULT_REGISTRY.snapshot()
        gauges = snap["gauges"]
        assert "repro_executor_pools_active" in gauges
        assert any(
            name.startswith("repro_cache_entries") for name in gauges
        )

    def test_scheduler_registers_collector(self):
        from repro.runtime.scheduler import Scheduler

        scheduler = Scheduler(executor="serial")
        try:
            snap = DEFAULT_REGISTRY.snapshot()
            assert "repro_scheduler_in_flight_jobs" in snap["gauges"]
        finally:
            scheduler.shutdown()


class TestConcurrentSnapshots:
    """No torn snapshots, monotone counters, exact final totals —
    exercised under both a thread storm and a thread+process executor
    storm driving real jobs."""

    def test_thread_storm_counters_monotone_and_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("storm_total")
        hist = registry.histogram("storm_seconds", reservoir=64)
        stop = threading.Event()
        seen = []
        errors = []

        def reader():
            last = -1.0
            while not stop.is_set():
                snap = registry.snapshot()
                value = snap["counters"]["storm_total"]
                stats = snap["histograms"]["storm_seconds"]
                if value < last:
                    errors.append(f"counter went backwards {last}->{value}")
                last = value
                # torn histogram check: count and sum must agree
                if stats["count"] and abs(
                    stats["sum"] - stats["count"] * 0.5
                ) > 1e-6:
                    errors.append(f"torn histogram {stats}")
                seen.append(value)

        def writer():
            for _ in range(2000):
                counter.inc()
                hist.observe(0.5)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors, errors[:3]
        assert counter.value == 8000
        assert hist.snapshot()["count"] == 8000
        assert seen, "readers never snapshotted"

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_snapshots_stable_under_executor_storm(self, executor):
        """Concurrent DEFAULT_REGISTRY snapshots while real jobs run."""
        from repro.circuits import library
        from repro.runtime import execute

        circuit = library.ghz_state(3)
        circuit.measure_all()

        before = DEFAULT_REGISTRY.snapshot()["counters"]
        stop = threading.Event()
        errors = []

        def scrape():
            last = {}
            while not stop.is_set():
                snap = DEFAULT_REGISTRY.snapshot()
                for name, value in snap["counters"].items():
                    if value < last.get(name, float("-inf")):
                        errors.append(f"{name} went backwards")
                    last[name] = value
                DEFAULT_REGISTRY.render_prometheus()  # must never raise

        scraper = threading.Thread(target=scrape)
        scraper.start()
        try:
            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(
                        lambda s: execute(
                            circuit, "statevector", shots=64, seed=s,
                            executor=executor,
                        ).result(timeout=60),
                        s,
                    )
                    for s in range(8)
                ]
                for future in futures:
                    future.result(timeout=120)
        finally:
            stop.set()
            scraper.join()
        assert not errors, errors[:3]
        after = DEFAULT_REGISTRY.snapshot()["counters"]
        for name, value in before.items():
            if name in after:
                assert after[name] >= value, name
