"""Span trees: building, wire form, and cross-executor propagation."""

import pickle

import pytest

from repro.circuits import library
from repro.obs.trace import (
    Span,
    set_tracing_enabled,
    tracing_enabled,
    worker_chunk_record,
)
from repro.runtime import execute


def traced_batch(n=3):
    circuits = []
    for qubits in range(2, 2 + n):
        qc = library.ghz_state(qubits)
        qc.measure_all()
        circuits.append(qc)
    return circuits


class TestSpanBasics:
    def test_child_finish_duration(self):
        root = Span("job")
        child = root.child("stage", shots=8)
        child.finish()
        root.finish()
        assert child in root.children
        assert child.attrs["shots"] == 8
        assert child.duration_s is not None and child.duration_s >= 0
        assert root.duration_s >= child.duration_s * 0  # both finished

    def test_finish_is_idempotent(self):
        span = Span("s")
        span.finish()
        first = span.end_s
        span.finish()
        assert span.end_s == first

    def test_unfinished_span_reports_none_duration(self):
        span = Span("open")
        assert span.duration_s is None
        assert span.to_dict()["duration_s"] is None

    def test_events_are_timestamped_and_ordered(self):
        span = Span("s")
        span.event("first", detail=1)
        span.event("second")
        node = span.finish().to_dict()
        names = [e["name"] for e in node["events"]]
        assert names == ["first", "second"]
        assert node["events"][0]["detail"] == 1
        assert node["events"][0]["t_s"] <= node["events"][1]["t_s"]

    def test_find_descends_depth_first(self):
        root = Span("job")
        a = root.child("circuit")
        a.child("chunk")
        b = root.child("circuit")
        b.child("chunk")
        assert len(root.find("chunk")) == 2
        assert len(root.find("circuit")) == 2

    def test_to_dict_rebases_to_root_start(self):
        root = Span("job")
        child = root.child("late")
        child.finish()
        root.finish()
        node = root.to_dict()
        assert node["start_s"] == 0.0
        assert node["children"][0]["start_s"] >= 0.0

    def test_span_ids_unique(self):
        ids = {Span("x").span_id for _ in range(100)}
        assert len(ids) == 100


class TestWorkerBoundary:
    def test_context_is_picklable_and_small(self):
        span = Span("chunk")
        ctx = span.context()
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert set(ctx) == {"span_id", "name"}

    def test_worker_record_round_trip(self):
        span = Span("chunk")
        record = worker_chunk_record(
            span.context(), engine="StatevectorBackend", shots=64,
            duration_s=0.25, batch_width=1024,
        )
        record = pickle.loads(pickle.dumps(record))
        span.merge_worker(record)
        assert span.attrs["engine"] == "StatevectorBackend"
        assert span.attrs["worker_shots"] == 64
        assert span.attrs["worker_wall_s"] == 0.25
        assert span.attrs["batch_width"] == 1024
        assert "span_id" not in span.attrs  # identity stays out of attrs

    def test_none_context_ships_nothing(self):
        assert worker_chunk_record(
            None, engine="X", shots=1, duration_s=0.0
        ) is None

    def test_merge_worker_tolerates_none(self):
        span = Span("chunk")
        span.merge_worker(None)
        assert span.attrs == {}


class TestTracingSwitch:
    def test_set_returns_previous_and_restores(self):
        assert tracing_enabled()
        previous = set_tracing_enabled(False)
        try:
            assert previous is True
            assert not tracing_enabled()
        finally:
            set_tracing_enabled(previous)
        assert tracing_enabled()

    def test_untraced_execute_has_no_span(self):
        previous = set_tracing_enabled(False)
        try:
            job = execute(
                traced_batch(1)[0], "statevector", shots=32, seed=1
            )
            job.result(timeout=60)
            assert job.trace() is None
        finally:
            set_tracing_enabled(previous)


class TestTracedExecution:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_chunk_worker_wall_clocks_sum_to_time_taken(self, executor):
        """The acceptance check: per-chunk worker wall-clocks in the
        trace sum to the jobset's end-to-end chunk time, under thread
        AND process executors (durations survive the pickle boundary
        bit-identically)."""
        parent = Span("test")
        jobs = execute(
            traced_batch(3), "statevector", shots=256, seed=7,
            executor=executor, trace_parent=parent,
        )
        jobs.result(timeout=120)
        parent.finish()
        total = 0.0
        for job in jobs:
            tree = job.trace()
            assert tree is not None
            chunks = [
                c for c in _walk(tree) if c["name"] == "chunk"
            ]
            assert chunks, f"no chunk spans for {job.job_id}"
            for chunk in chunks:
                attrs = chunk["attrs"]
                assert attrs["worker_wall_s"] >= 0.0
                assert attrs["engine"] == "StatevectorBackend"
                assert attrs["worker_shots"] > 0
                total += attrs["worker_wall_s"]
        assert total == pytest.approx(jobs.time_taken, rel=0, abs=0)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_chunk_spans_nest_inside_job_window(self, executor):
        parent = Span("test")
        jobs = execute(
            traced_batch(2), "statevector", shots=128, seed=3,
            executor=executor, trace_parent=parent,
        )
        jobs.result(timeout=120)
        for job in jobs:
            tree = job.trace()
            assert tree["duration_s"] is not None
            assert tree["attrs"]["status"] == "done"
            for node in _walk(tree):
                if node is tree or node["duration_s"] is None:
                    continue
                assert node["start_s"] >= -1e-6
                assert (
                    node["start_s"] + node["duration_s"]
                    <= tree["start_s"] + tree["duration_s"] + 1e-6
                ), f"{node['name']} escapes the job window"

    def test_worker_pid_differs_under_process_executor(self):
        import os

        parent = Span("test")
        jobs = execute(
            traced_batch(1), "statevector", shots=128, seed=5,
            executor="process", trace_parent=parent,
        )
        jobs.result(timeout=120)
        pids = {
            c["attrs"]["worker_pid"]
            for c in _walk(jobs[0].trace())
            if c["name"] == "chunk"
        }
        assert pids and os.getpid() not in pids

    def test_trace_parent_adopts_circuit_spans(self):
        parent = Span("mine")
        jobs = execute(
            traced_batch(2), "statevector", shots=32, seed=1,
            trace_parent=parent,
        )
        jobs.result(timeout=60)
        circuits = [c for c in parent.children if c.name == "circuit"]
        assert len(circuits) == 2
        assert jobs.trace() == [span.to_dict() for span in circuits]

    def test_cache_hit_marked_in_prepare_span(self):
        # prepare spans live on the process fan-out path, where the
        # parent transpiles once before shipping chunks to workers
        qc = traced_batch(1)[0]
        execute(
            qc, "noisy:ibmqx4", shots=16, seed=1, executor="process"
        ).result(timeout=120)
        parent = Span("again")
        job = execute(
            qc, "noisy:ibmqx4", shots=16, seed=2, executor="process",
            trace_parent=parent,
        )
        job.result(timeout=120)
        prepares = [
            n for n in _walk(job.trace()) if n["name"] == "prepare"
        ]
        assert prepares and prepares[0]["attrs"]["cache_hit"] is True

    def test_jobset_trace_snapshot_safe_while_running(self):
        parent = Span("live")
        jobs = execute(
            traced_batch(2), "statevector", shots=64, seed=2,
            executor="thread", trace_parent=parent,
        )
        trees = jobs.trace()  # mid-flight snapshot must not raise
        assert len(trees) == 2
        jobs.result(timeout=60)


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)
