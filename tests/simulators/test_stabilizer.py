"""Tests for the Aaronson-Gottesman stabilizer engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import StabilizerError
from repro.simulators.stabilizer import StabilizerSimulator, StabilizerState
from repro.simulators.statevector import StatevectorSimulator


class TestStabilizerState:
    def test_initial_stabilizers_are_z(self):
        state = StabilizerState(2)
        assert state.stabilizer_strings() == ["+ZI", "+IZ"]

    def test_x_flips_sign(self):
        state = StabilizerState(1)
        state.apply_x(0)
        assert state.stabilizer_strings() == ["-Z"]

    def test_h_maps_z_to_x(self):
        state = StabilizerState(1)
        state.apply_h(0)
        assert state.stabilizer_strings() == ["+X"]

    def test_bell_stabilizers(self):
        state = StabilizerState(2)
        state.apply_h(0)
        state.apply_cx(0, 1)
        strings = set(state.stabilizer_strings())
        assert strings == {"+XX", "+ZZ"}

    def test_deterministic_measurement(self, rng):
        state = StabilizerState(1)
        state.apply_x(0)
        assert state.measure(0, rng) == 1
        assert state.measure(0, rng) == 1  # repeatable

    def test_random_measurement_collapses(self, rng):
        state = StabilizerState(1)
        state.apply_h(0)
        outcome = state.measure(0, rng)
        # After collapse the outcome is pinned.
        assert state.measure(0, rng) == outcome

    def test_expectation_z(self):
        state = StabilizerState(1)
        assert state.expectation_z(0) == 1
        state.apply_x(0)
        assert state.expectation_z(0) == -1
        state.apply_h(0)
        assert state.expectation_z(0) is None

    def test_minimum_size(self):
        with pytest.raises(StabilizerError):
            StabilizerState(0)


class TestSimulatorSemantics:
    def test_ghz_correlations(self, stab_sim):
        qc = library.ghz_state(4)
        qc.measure_all()
        result = stab_sim.run(qc, shots=400, seed=1)
        assert set(result.counts) == {"0000", "1111"}

    def test_deterministic_circuit(self, stab_sim):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        assert stab_sim.run(qc, shots=50, seed=2).counts == {"11": 50}

    def test_non_clifford_rejected(self, stab_sim):
        qc = QuantumCircuit(1)
        qc.t(0)
        with pytest.raises(StabilizerError, match="non-Clifford"):
            stab_sim.run(qc)

    def test_non_clifford_rotation_rejected(self, stab_sim):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        with pytest.raises(StabilizerError, match="not a Clifford"):
            stab_sim.run(qc)

    def test_clifford_rotation_accepted(self, stab_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.rz(math.pi, 0)  # Z
        qc.h(0)  # H Z H = X
        qc.measure(0, 0)
        assert stab_sim.run(qc, shots=20, seed=3).counts == {"1": 20}

    def test_s_gate_via_phase_rotation(self, stab_sim):
        # S^2 = Z: H S S H |0> = H Z H |0> = |1>.
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.p(math.pi / 2, 0)
        qc.p(math.pi / 2, 0)
        qc.h(0)
        qc.measure(0, 0)
        assert stab_sim.run(qc, shots=20, seed=4).counts == {"1": 20}

    def test_reset(self, stab_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        assert stab_sim.run(qc, shots=30, seed=5).counts == {"0": 30}

    def test_conditional_gate(self, stab_sim):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.measure(0, 0)
        qc.x(1, condition=(0, 1))
        qc.measure(1, 1)
        assert stab_sim.run(qc, shots=30, seed=6).counts == {"11": 30}

    def test_swap_and_cz_and_cy(self, stab_sim, sv_sim):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cz(0, 1)
        qc.cy(0, 1)
        qc.swap(0, 1)
        qc.measure([0, 1], [0, 1])
        stab = stab_sim.run(qc, shots=6000, seed=7).counts
        exact = sv_sim.exact_probabilities(qc)
        for key, p in exact.items():
            assert abs(stab.get(key, 0) / 6000 - p) < 0.04


class TestCrossValidation:
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_clifford_agrees_with_statevector(self, seed):
        circuit = library.random_circuit(3, 6, seed=seed, clifford_only=True)
        circuit.measure_all()
        exact = StatevectorSimulator().exact_probabilities(circuit)
        sampled = StabilizerSimulator().run(circuit, shots=3000, seed=seed)
        for key, p in exact.items():
            assert abs(sampled.counts.get(key, 0) / 3000 - p) < 0.06
        # No impossible outcomes.
        for key in sampled.counts:
            assert exact.get(key, 0.0) > 1e-12

    def test_large_ghz_runs_fast(self, stab_sim):
        qc = library.ghz_state(128)
        qc.measure_all()
        result = stab_sim.run(qc, shots=20, seed=8)
        assert set(result.counts) <= {"0" * 128, "1" * 128}
