"""Tests for the density-matrix engine."""

import math

import numpy as np
import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.noise.channels import bit_flip, depolarizing
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.simulators.density_matrix import (
    DensityMatrix,
    DensityMatrixSimulator,
)
from repro.simulators.statevector import StatevectorSimulator


class TestDensityMatrixClass:
    def test_from_statevector_pure(self):
        rho = DensityMatrix.from_statevector(np.array([1, 0], dtype=complex))
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities() == {"0": pytest.approx(1.0)}

    def test_trace_validated(self):
        with pytest.raises(SimulationError, match="trace"):
            DensityMatrix(np.eye(2, dtype=complex))

    def test_hermiticity_validated(self):
        bad = np.array([[0.5, 0.5], [0.1, 0.5]], dtype=complex)
        with pytest.raises(SimulationError, match="Hermitian"):
            DensityMatrix(bad)

    def test_non_square_rejected(self):
        with pytest.raises(SimulationError, match="square"):
            DensityMatrix(np.ones((2, 3)))

    def test_maximally_mixed_purity(self):
        rho = DensityMatrix(np.eye(2, dtype=complex) / 2)
        assert rho.purity() == pytest.approx(0.5)


class TestIdealAgreementWithStatevector:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: library.bell_pair(),
            lambda: library.ghz_state(3),
            lambda: library.qft(3),
            lambda: library.w_state(3),
        ],
        ids=["bell", "ghz", "qft", "w"],
    )
    def test_final_state_matches(self, factory, dm_sim, sv_sim):
        circuit = factory()
        sv = sv_sim.final_statevector(circuit)
        rho = dm_sim.final_density_matrix(circuit)
        expected = DensityMatrix.from_statevector(sv.data)
        np.testing.assert_allclose(rho.data, expected.data, atol=1e-10)

    def test_measured_distribution_matches(self, dm_sim, sv_sim):
        circuit = library.ghz_state(3)
        circuit.measure_all()
        sv_probs = sv_sim.exact_probabilities(circuit)
        dm_probs = DensityMatrixSimulator().run(circuit, shots=1).probabilities
        assert set(sv_probs) == set(dm_probs)
        for key in sv_probs:
            assert abs(sv_probs[key] - dm_probs[key]) < 1e-10

    def test_conditionals_match(self, dm_sim, sv_sim):
        prep = QuantumCircuit(1)
        prep.ry(0.9, 0)
        circuit = library.teleportation(state_prep=prep)
        reg = circuit.add_clbits(1, name="bob")
        circuit.measure(2, reg[0])
        sv_probs = sv_sim.exact_probabilities(circuit)
        dm_probs = dm_sim.run(circuit, shots=1).probabilities
        for key, p in sv_probs.items():
            assert abs(dm_probs.get(key, 0.0) - p) < 1e-10


class TestNoiseApplication:
    def test_bit_flip_after_x(self):
        model = NoiseModel("bf").add_all_qubit_gate_error(["x"], bit_flip(0.25))
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        probs = sim.run(qc, shots=1).probabilities
        assert probs["1"] == pytest.approx(0.75)
        assert probs["0"] == pytest.approx(0.25)

    def test_depolarizing_mixes_state(self):
        model = NoiseModel("dep").add_all_qubit_gate_error(["h"], depolarizing(1.0))
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(1)
        qc.h(0)
        rho = sim.final_density_matrix(qc)
        np.testing.assert_allclose(rho.data, np.eye(2) / 2, atol=1e-10)

    def test_noise_only_on_matching_gate(self):
        model = NoiseModel("bf").add_all_qubit_gate_error(["x"], bit_flip(1.0))
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.h(0)  # identity overall, h is noise-free in this model
        qc.measure(0, 0)
        probs = sim.run(qc, shots=1).probabilities
        assert probs["0"] == pytest.approx(1.0)

    def test_qubit_specific_gate_error(self):
        model = NoiseModel("specific").add_gate_error("x", (1,), bit_flip(1.0))
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(2, 2)
        qc.x(0)  # clean
        qc.x(1)  # flipped back by the noise
        qc.measure([0, 1], [0, 1])
        probs = sim.run(qc, shots=1).probabilities
        assert probs["10"] == pytest.approx(1.0)

    def test_readout_error_flips_recorded_value(self):
        model = NoiseModel("ro").add_readout_error(ReadoutError(0.0, 0.2), qubit=0)
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        probs = sim.run(qc, shots=1).probabilities
        assert probs["1"] == pytest.approx(0.2)

    def test_readout_error_does_not_change_state(self):
        model = NoiseModel("ro").add_readout_error(ReadoutError(0.5, 0.5))
        sim = DensityMatrixSimulator(noise_model=model)
        qc = QuantumCircuit(1, 2)
        qc.measure(0, 0)
        qc.measure(0, 1)
        probs = sim.run(qc, shots=1).probabilities
        # Recorded bits are independent coin flips; the qubit stays |0>.
        assert probs == {
            "00": pytest.approx(0.25),
            "01": pytest.approx(0.25),
            "10": pytest.approx(0.25),
            "11": pytest.approx(0.25),
        }


class TestMeasurementAndConditioning:
    def test_conditional_density_matrix(self, dm_sim):
        qc = QuantumCircuit(2, 1)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        rho, mass = dm_sim.conditional_density_matrix(qc, {0: 1})
        assert mass == pytest.approx(0.5)
        assert rho.probabilities() == {"11": pytest.approx(1.0)}

    def test_conditional_on_impossible_outcome(self, dm_sim):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError, match="no branch"):
            dm_sim.conditional_density_matrix(qc, {0: 1})

    def test_reset_is_deterministic_channel(self, dm_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        probs = dm_sim.run(qc, shots=1).probabilities
        assert probs["0"] == pytest.approx(1.0)

    def test_branch_merging_bounds_growth(self):
        # 8 measurements into the same clbit: branch count stays tiny
        # because same-clbit branches merge.
        sim = DensityMatrixSimulator(max_branches=8)
        qc = QuantumCircuit(1, 1)
        for _ in range(8):
            qc.h(0)
            qc.measure(0, 0)
        result = sim.run(qc, shots=1)
        assert abs(sum(result.probabilities.values()) - 1.0) < 1e-9

    def test_final_density_matrix_averages_outcomes(self, dm_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        rho = dm_sim.final_density_matrix(qc)
        np.testing.assert_allclose(rho.data, np.eye(2) / 2, atol=1e-10)
