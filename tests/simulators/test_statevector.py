"""Tests for the statevector engine: evolution, measurement, branches."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits import library
from repro.exceptions import SimulationError
from repro.simulators.statevector import Statevector, StatevectorSimulator


class TestStatevectorClass:
    def test_from_label_basic(self):
        assert Statevector.from_label("01").probabilities() == {"01": 1.0}

    def test_from_label_plus(self):
        probs = Statevector.from_label("+").probabilities()
        assert abs(probs["0"] - 0.5) < 1e-12
        assert abs(probs["1"] - 0.5) < 1e-12

    def test_from_label_y_eigenstates(self):
        state = Statevector.from_label("r")
        assert abs(state.data[1] - 1j / math.sqrt(2)) < 1e-12

    def test_unknown_label_rejected(self):
        with pytest.raises(SimulationError):
            Statevector.from_label("q")

    def test_non_normalised_rejected(self):
        with pytest.raises(SimulationError, match="normalis"):
            Statevector(np.array([1.0, 1.0]))

    def test_bad_length_rejected(self):
        with pytest.raises(SimulationError, match="power of two"):
            Statevector(np.array([1.0, 0.0, 0.0]))

    def test_equiv_ignores_global_phase(self):
        a = Statevector.from_label("+")
        b = Statevector(np.exp(1j * 0.3) * a.data)
        assert a.equiv(b)

    def test_equiv_detects_difference(self):
        assert not Statevector.from_label("0").equiv(Statevector.from_label("1"))


class TestUnitaryEvolution:
    def test_bit_ordering_qubit0_most_significant(self, sv_sim):
        qc = QuantumCircuit(2)
        qc.x(0)  # |10>
        state = sv_sim.final_statevector(qc)
        assert state.probabilities() == {"10": 1.0}

    def test_hadamard_cx_gives_bell(self, sv_sim):
        state = sv_sim.final_statevector(library.bell_pair())
        np.testing.assert_allclose(
            state.data, [1 / math.sqrt(2), 0, 0, 1 / math.sqrt(2)], atol=1e-12
        )

    def test_gate_order_matters(self, sv_sim):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.h(0)  # H X |0> = |->
        state = sv_sim.final_statevector(qc)
        assert state.equiv(Statevector.from_label("-"))

    def test_three_qubit_gate(self, sv_sim):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.x(1)
        qc.ccx(0, 1, 2)
        assert sv_sim.final_statevector(qc).probabilities() == {"111": 1.0}

    def test_initial_state_override(self, sv_sim):
        qc = QuantumCircuit(1)
        qc.h(0)
        state = sv_sim.final_statevector(
            qc, initial_state=Statevector.from_label("1").data
        )
        assert state.equiv(Statevector.from_label("-"))

    def test_measurement_rejected_in_final_statevector(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError, match="unitary"):
            sv_sim.final_statevector(qc)


class TestMeasurement:
    def test_deterministic_outcome(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        result = sv_sim.run(qc, shots=100, seed=0)
        assert result.counts == {"1": 100}

    def test_uniform_sampling(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        result = sv_sim.run(qc, shots=10000, seed=3)
        assert abs(result.counts["0"] / 10000 - 0.5) < 0.03
        assert result.probabilities == {"0": pytest.approx(0.5), "1": pytest.approx(0.5)}

    def test_bell_correlations(self, sv_sim):
        qc = library.bell_pair()
        qc.measure_all()
        result = sv_sim.run(qc, shots=2000, seed=5)
        assert set(result.counts) == {"00", "11"}

    def test_collapse_affects_later_gates(self, sv_sim):
        # Measure |+> then re-measure: outcomes must agree within a shot.
        qc = QuantumCircuit(1, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.measure(0, 1)
        probs = sv_sim.exact_probabilities(qc)
        assert set(probs) == {"00", "11"}

    def test_unmeasured_circuit_returns_statevector(self, sv_sim):
        result = sv_sim.run(library.bell_pair(), shots=10, seed=0)
        assert result.statevector is not None
        assert result.counts == {}

    def test_reset_forces_zero(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.reset(0)
        qc.measure(0, 0)
        assert sv_sim.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_reset_of_superposition(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        assert sv_sim.exact_probabilities(qc) == {"0": pytest.approx(1.0)}


class TestConditionals:
    def test_teleportation_corrections(self, sv_sim):
        prep = QuantumCircuit(1)
        prep.ry(1.1, 0)
        circuit = library.teleportation(state_prep=prep)
        reg = circuit.add_clbits(1, name="bob")
        circuit.measure(2, reg[0])
        probs = sv_sim.exact_probabilities(circuit)
        p_one = sum(p for key, p in probs.items() if key[2] == "1")
        assert abs(p_one - math.sin(0.55) ** 2) < 1e-9

    def test_condition_blocks_gate(self, sv_sim):
        qc = QuantumCircuit(2, 2)
        # clbit 0 stays 0, so the conditioned X must not fire.
        qc.x(1, condition=(0, 1))
        qc.measure(1, 1)
        assert sv_sim.exact_probabilities(qc) == {"00": pytest.approx(1.0)}

    def test_condition_enables_gate(self, sv_sim):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.measure(0, 0)
        qc.x(1, condition=(0, 1))
        qc.measure(1, 1)
        assert sv_sim.exact_probabilities(qc) == {"11": pytest.approx(1.0)}


class TestBranches:
    def test_branch_probabilities_sum_to_one(self, sv_sim):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.h(1)
        qc.measure([0, 1], [0, 1])
        branches = sv_sim.branches(qc)
        assert abs(sum(p for p, _, _ in branches) - 1.0) < 1e-12
        assert len(branches) == 4

    def test_branch_states_are_collapsed(self, sv_sim):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        for prob, key, state in sv_sim.branches(qc):
            assert abs(prob - 0.5) < 1e-12
            assert state.probabilities() == {key: pytest.approx(1.0)}

    def test_branch_cap_falls_back_to_sampling(self):
        sim = StatevectorSimulator(max_branches=2)
        qc = QuantumCircuit(3, 3)
        for q in range(3):
            qc.h(q)
        qc.measure([0, 1, 2], [0, 1, 2])
        result = sim.run(qc, shots=200, seed=9)
        assert result.metadata["method"] == "per-shot"
        assert result.counts.shots == 200

    def test_branches_raises_above_cap(self):
        sim = StatevectorSimulator(max_branches=2)
        qc = QuantumCircuit(3, 3)
        for q in range(3):
            qc.h(q)
        qc.measure([0, 1, 2], [0, 1, 2])
        with pytest.raises(SimulationError, match="branch cap"):
            sim.branches(qc)

    def test_per_shot_matches_branch_distribution(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        exact = StatevectorSimulator().exact_probabilities(qc)
        sampled = StatevectorSimulator(max_branches=1).run(qc, shots=4000, seed=13)
        for key, p in exact.items():
            assert abs(sampled.counts.get(key, 0) / 4000 - p) < 0.05


class TestValidation:
    def test_invalid_max_branches(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator(max_branches=0)

    def test_bad_initial_state_norm(self, sv_sim):
        qc = QuantumCircuit(1)
        with pytest.raises(SimulationError, match="normalis"):
            sv_sim.final_statevector(qc, initial_state=np.array([2.0, 0.0]))
