"""Tests for QUIRK-style post-selection."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulators.postselection import (
    postselect_statevector,
    postselected_statevector_after,
)
from repro.simulators.statevector import Statevector


class TestPostselectStatevector:
    def test_bell_postselection(self):
        bell = Statevector(
            np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)
        )
        state, prob = postselect_statevector(bell, qubit=0, value=1)
        assert prob == pytest.approx(0.5)
        assert state.probabilities() == {"11": pytest.approx(1.0)}

    def test_product_state_unchanged(self):
        plus_zero = Statevector.from_label("+0")
        state, prob = postselect_statevector(plus_zero, qubit=1, value=0)
        assert prob == pytest.approx(1.0)
        assert state.equiv(plus_zero)

    def test_impossible_outcome_raises(self):
        zero = Statevector.from_label("0")
        with pytest.raises(SimulationError, match="probability 0"):
            postselect_statevector(zero, qubit=0, value=1)

    def test_qubit_range_checked(self):
        with pytest.raises(SimulationError, match="out of range"):
            postselect_statevector(Statevector.from_label("0"), qubit=3, value=0)


class TestPostselectedCircuit:
    def test_classical_assertion_projection(self):
        # The Fig. 6 scenario: |+> asserted |0>; post-select no error.
        from repro.core.classical import append_classical_assertion

        qc = QuantumCircuit(1)
        qc.h(0)
        append_classical_assertion(qc, 0, 0)
        state, prob = postselected_statevector_after(qc, {0: 0})
        assert prob == pytest.approx(0.5)
        # Qubit 0 is |0>, ancilla collapsed to |0>.
        assert state.probabilities() == {"00": pytest.approx(1.0)}

    def test_no_matching_branch_raises(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError, match="no measurement branch"):
            postselected_statevector_after(qc, {0: 1})

    def test_underconstrained_postselection_raises(self):
        # Two independent coins measured; conditioning on one leaves a mix.
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.h(1)
        qc.measure([0, 1], [0, 1])
        # After measuring BOTH, fixing only clbit 0 leaves clbit-1 branches
        # with different collapsed states -> not a pure state.
        with pytest.raises(SimulationError, match="not a single pure state"):
            postselected_statevector_after(qc, {0: 0})

    def test_full_conditioning_succeeds(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.h(1)
        qc.measure([0, 1], [0, 1])
        state, prob = postselected_statevector_after(qc, {0: 0, 1: 1})
        assert prob == pytest.approx(0.25)
        assert state.probabilities() == {"01": pytest.approx(1.0)}
