"""Batched-shot simulation: the batched/looped determinism contract.

The sampling engines' ``method="batched"`` path evolves all shots of a
``max_batch`` tile along a NumPy batch axis; ``method="loop"`` re-walks the
circuit per shot.  Both consume identical per-trajectory Philox substreams
keyed by ``(seed, trajectory index)``, so counts must be **bit-identical**
across methods and across every ``max_batch`` tiling for a fixed seed —
that invariance is what lets the runtime treat the knobs as pure
throughput.  These tests pin the contract (hypothesis properties across
noisy backends and tilings), the convergence of the batched path against
the density-matrix engine's exact distribution, and the loop fallback for
duck-typed noise models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.core.injector import AssertionInjector
from repro.devices.backend import TrajectoryDeviceBackend
from repro.devices.ibmqx4 import ibmqx4
from repro.exceptions import SimulationError
from repro.noise.channels import amplitude_damping, depolarizing
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.noise.trajectories import TrajectorySimulator
from repro.simulators import _batched
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.statevector import StatevectorSimulator

SEEDS = st.integers(min_value=0, max_value=2 ** 31 - 1)


def noisy_model():
    return (
        NoiseModel("unit-noise")
        .add_all_qubit_gate_error(["h", "x"], depolarizing(0.1))
        .add_all_qubit_gate_error(["cx"], depolarizing(0.05))
        .add_all_qubit_gate_error(["x"], amplitude_damping(0.2))
        .add_readout_error(ReadoutError(0.08, 0.04))
    )


def stochastic_circuit():
    """Gates, noise, mid-circuit measurement, conditional and reset."""
    qc = QuantumCircuit(3, 4)
    qc.h(0)
    qc.cx(0, 1)
    qc.x(2)
    qc.measure(0, 0)
    qc.x(1, condition=(0, 1))
    qc.reset(2)
    qc.cx(1, 2)
    qc.measure(1, 1)
    qc.measure(2, 2)
    qc.measure(0, 3)
    return qc


def instrumented_bell():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


class DuckTypedNoise:
    """A noise interface that is *not* a NoiseModel (stateful in principle)."""

    name = "duck"

    def __init__(self):
        self._inner = noisy_model()

    def channels_for(self, instruction):
        return self._inner.channels_for(instruction)

    def readout_confusion(self, qubit):
        return self._inner.readout_confusion(qubit)


class TestBatchedEqualsLooped:
    """The acceptance-criterion property: bit-identical at every tiling."""

    @given(seed=SEEDS, shots=st.integers(min_value=1, max_value=96))
    @settings(max_examples=15, deadline=None)
    def test_trajectory_noisy(self, seed, shots):
        circuit = stochastic_circuit()
        model = noisy_model()
        loop = TrajectorySimulator(model, method="loop").run(
            circuit, shots=shots, seed=seed
        )
        assert loop.metadata["method"] == "loop"
        for max_batch in (1, 7, shots):
            batched = TrajectorySimulator(
                model, method="batched", max_batch=max_batch
            ).run(circuit, shots=shots, seed=seed)
            assert batched.metadata["method"] == "batched"
            assert dict(batched.counts) == dict(loop.counts), max_batch

    @given(seed=SEEDS, shots=st.integers(min_value=1, max_value=96))
    @settings(max_examples=10, deadline=None)
    def test_trajectory_ideal(self, seed, shots):
        circuit = stochastic_circuit()
        loop = TrajectorySimulator(method="loop").run(
            circuit, shots=shots, seed=seed
        )
        for max_batch in (1, 7, shots):
            batched = TrajectorySimulator(method="batched", max_batch=max_batch).run(
                circuit, shots=shots, seed=seed
            )
            assert dict(batched.counts) == dict(loop.counts), max_batch

    @given(seed=SEEDS, shots=st.integers(min_value=1, max_value=96))
    @settings(max_examples=10, deadline=None)
    def test_statevector_fallback(self, seed, shots):
        circuit = stochastic_circuit()
        loop = StatevectorSimulator(max_branches=1, method="loop").run(
            circuit, shots=shots, seed=seed
        )
        assert loop.metadata["method"] == "per-shot"
        assert loop.metadata["per_shot_method"] == "loop"
        for max_batch in (1, 7, shots):
            batched = StatevectorSimulator(
                max_branches=1, method="batched", max_batch=max_batch
            ).run(circuit, shots=shots, seed=seed)
            assert batched.metadata["per_shot_method"] == "batched"
            assert dict(batched.counts) == dict(loop.counts), max_batch

    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_device_backend_methods_agree(self, seed):
        """The provider-level knob: trajectory device backends too."""
        circuit = instrumented_bell()
        device = ibmqx4()
        reference = None
        for max_batch, method in ((None, "loop"), (1, "batched"),
                                  (7, "batched"), (64, "auto")):
            backend = TrajectoryDeviceBackend(
                device, noise_scale=0.25, method=method,
                max_batch=max_batch or 64,
            )
            counts = dict(backend.run(circuit, shots=64, seed=seed).counts)
            if reference is None:
                reference = counts
            assert counts == reference, (method, max_batch)

    def test_tiling_never_changes_counts_at_scale(self):
        """One non-hypothesis anchor at realistic shot counts."""
        circuit = stochastic_circuit()
        model = noisy_model()
        reference = TrajectorySimulator(model, method="batched", max_batch=4096).run(
            circuit, shots=1000, seed=2020
        )
        for max_batch in (13, 250, 999):
            tiled = TrajectorySimulator(
                model, method="batched", max_batch=max_batch
            ).run(circuit, shots=1000, seed=2020)
            assert dict(tiled.counts) == dict(reference.counts)


class TestBatchedConvergence:
    def test_converges_to_density_matrix_distribution(self):
        """Batched trajectories converge to the exact noisy distribution."""
        circuit = instrumented_bell()
        model = noisy_model()
        exact = DensityMatrixSimulator(noise_model=model).run(circuit, shots=1)
        shots = 8000
        sampled = TrajectorySimulator(model, method="batched").run(
            circuit, shots=shots, seed=7
        )
        assert sampled.counts.shots == shots
        for key, probability in exact.probabilities.items():
            assert abs(sampled.counts.get(key, 0) / shots - probability) < 0.04

    def test_ideal_batched_matches_statevector(self):
        circuit = library.ghz_state(3)
        circuit.measure_all()
        exact = StatevectorSimulator().exact_probabilities(circuit)
        sampled = TrajectorySimulator(method="batched").run(
            circuit, shots=6000, seed=3
        )
        for key, probability in exact.items():
            assert abs(sampled.counts.get(key, 0) / 6000 - probability) < 0.04


class TestLoopFallback:
    def test_duck_typed_noise_takes_loop_path(self):
        result = TrajectorySimulator(DuckTypedNoise()).run(
            stochastic_circuit(), shots=16, seed=1
        )
        assert result.metadata["method"] == "loop"

    def test_duck_typed_noise_rejects_batched(self):
        simulator = TrajectorySimulator(DuckTypedNoise(), method="batched")
        with pytest.raises(SimulationError, match="method='loop'"):
            simulator.run(stochastic_circuit(), shots=4, seed=1)

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError, match="unknown method"):
            TrajectorySimulator(method="turbo")
        with pytest.raises(SimulationError, match="unknown method"):
            StatevectorSimulator(method="turbo")

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(SimulationError, match="max_batch"):
            TrajectorySimulator(max_batch=0)

    def test_device_backend_reports_vectorized(self):
        device = ibmqx4()
        assert TrajectoryDeviceBackend(device).vectorized_shots
        assert TrajectoryDeviceBackend(device).cost_tag == "batched"
        looped = TrajectoryDeviceBackend(device, method="loop")
        assert not looped.vectorized_shots
        assert looped.cost_tag == "loop"


class TestSubstreamContract:
    def test_substreams_depend_only_on_seed_and_index(self):
        first = _batched.spawn_substreams(11, 8)
        second = _batched.spawn_substreams(11, 8)
        for a, b in zip(first, second):
            assert (
                _batched.substream_generator(a).random(4).tolist()
                == _batched.substream_generator(b).random(4).tolist()
            )

    def test_prefix_stability_across_shot_counts(self):
        """Trajectory t's substream is the same whether 8 or 64 shots run."""
        short = _batched.spawn_substreams(5, 8)
        long = _batched.spawn_substreams(5, 64)
        for a, b in zip(short, long):
            assert (
                _batched.substream_generator(a).random(2).tolist()
                == _batched.substream_generator(b).random(2).tolist()
            )

    def test_zero_shots(self):
        result = TrajectorySimulator(noisy_model()).run(
            stochastic_circuit(), shots=0, seed=1
        )
        assert dict(result.counts) == {}
        assert result.shots == 0

    def test_no_clbits_counts_empty_key(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        result = TrajectorySimulator().run(qc, shots=5, seed=1)
        assert dict(result.counts) == {"": 5}
