"""Tests for the circuit-unitary builder and equivalence checking."""

import math

import numpy as np
import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import cx_matrix, h_matrix
from repro.exceptions import SimulationError
from repro.simulators.unitary import circuit_unitary, circuits_equivalent


class TestCircuitUnitary:
    def test_single_gate(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        np.testing.assert_allclose(circuit_unitary(qc), h_matrix(), atol=1e-12)

    def test_bell_circuit_unitary(self):
        qc = library.bell_pair()
        expected = cx_matrix() @ np.kron(h_matrix(), np.eye(2))
        np.testing.assert_allclose(circuit_unitary(qc), expected, atol=1e-12)

    def test_gate_on_second_qubit_kron_position(self):
        qc = QuantumCircuit(2)
        qc.h(1)
        expected = np.kron(np.eye(2), h_matrix())
        np.testing.assert_allclose(circuit_unitary(qc), expected, atol=1e-12)

    def test_reversed_cx_operands(self):
        qc = QuantumCircuit(2)
        qc.cx(1, 0)  # control is qubit 1 (least significant here)
        expected = np.zeros((4, 4))
        # |q0 q1>: 01 -> 11, 11 -> 01, others fixed.
        expected[0b00, 0b00] = 1
        expected[0b11, 0b01] = 1
        expected[0b10, 0b10] = 1
        expected[0b01, 0b11] = 1
        np.testing.assert_allclose(circuit_unitary(qc), expected, atol=1e-12)

    def test_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError, match="unitary"):
            circuit_unitary(qc)

    def test_unitarity_of_library_circuits(self):
        for factory in (library.qft(3), library.grover(2, [1]), library.w_state(3)):
            u = circuit_unitary(factory)
            np.testing.assert_allclose(
                u @ u.conj().T, np.eye(u.shape[0]), atol=1e-9
            )


class TestEquivalence:
    def test_equivalent_decompositions(self):
        a = QuantumCircuit(1)
        a.z(0)
        b = QuantumCircuit(1)
        b.s(0)
        b.s(0)
        assert circuits_equivalent(a, b)

    def test_global_phase_tolerated(self):
        a = QuantumCircuit(1)
        a.rz(math.pi, 0)  # Z up to global phase -i
        b = QuantumCircuit(1)
        b.z(0)
        assert circuits_equivalent(a, b)
        assert not circuits_equivalent(a, b, up_to_phase=False)

    def test_detects_difference(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        b.y(0)
        assert not circuits_equivalent(a, b)

    def test_size_mismatch(self):
        assert not circuits_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_swap_as_three_cx(self):
        a = QuantumCircuit(2)
        a.swap(0, 1)
        b = QuantumCircuit(2)
        b.cx(0, 1).cx(1, 0).cx(0, 1)
        assert circuits_equivalent(a, b)
