"""Tests for the generic parametric devices."""

import pytest

from repro.devices.generic import (
    fully_connected_device,
    grid_device,
    linear_device,
)
from repro.exceptions import DeviceError


class TestLinearDevice:
    def test_chain_edges_bidirectional(self):
        device = linear_device(4)
        cmap = device.coupling_map
        for q in range(3):
            assert cmap.supports(q, q + 1)
            assert cmap.supports(q + 1, q)
        assert not cmap.connected(0, 2)

    def test_minimum_size(self):
        with pytest.raises(DeviceError):
            linear_device(1)

    def test_calibrations_cover_all_qubits(self):
        device = linear_device(5)
        assert len(device.qubit_calibrations) == 5
        for q in range(5):
            assert device.gate_calibration("u3", (q,)) is not None


class TestGridDevice:
    def test_grid_shape(self):
        device = grid_device(2, 3)
        assert device.num_qubits == 6
        cmap = device.coupling_map
        assert cmap.connected(0, 1)   # row neighbour
        assert cmap.connected(0, 3)   # column neighbour
        assert not cmap.connected(0, 4)  # diagonal

    def test_single_cell_rejected(self):
        with pytest.raises(DeviceError):
            grid_device(1, 1)


class TestFullyConnected:
    def test_every_pair_connected(self):
        device = fully_connected_device(4)
        cmap = device.coupling_map
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert cmap.supports(a, b)

    def test_custom_error_rates(self):
        device = fully_connected_device(3, cx_error=0.05)
        assert device.average_cx_error() == pytest.approx(0.05)

    def test_names(self):
        assert linear_device(3).name == "linear_3"
        assert grid_device(2, 2).name == "grid_2x2"
        assert fully_connected_device(3, name="custom").name == "custom"
