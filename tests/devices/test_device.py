"""Tests for DeviceModel and calibration-to-noise-model compilation."""

import numpy as np
import pytest

from repro.devices.calibration import GateCalibration, QubitCalibration
from repro.devices.device import DeviceModel
from repro.devices.topology import CouplingMap
from repro.exceptions import DeviceError


def tiny_device():
    coupling = CouplingMap([(0, 1), (1, 0)], num_qubits=2)
    qubits = [
        QubitCalibration(t1=50_000, t2=40_000, readout_p0_given_1=0.05,
                         readout_p1_given_0=0.02),
        QubitCalibration(t1=60_000, t2=50_000, readout_p0_given_1=0.04,
                         readout_p1_given_0=0.03),
    ]
    gates = [
        GateCalibration("u3", (0,), 1e-3, 100.0),
        GateCalibration("u3", (1,), 2e-3, 100.0),
        GateCalibration("cx", (0, 1), 2e-2, 300.0),
    ]
    return DeviceModel("tiny", coupling, ("u1", "u2", "u3", "cx"), qubits, gates)


class TestCalibrationValidation:
    def test_t2_bound(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=10, t2=25, readout_p0_given_1=0, readout_p1_given_0=0)

    def test_negative_t1(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=-1, t2=1, readout_p0_given_1=0, readout_p1_given_0=0)

    def test_readout_probability_range(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=10, t2=10, readout_p0_given_1=2.0,
                             readout_p1_given_0=0.0)

    def test_gate_error_range(self):
        with pytest.raises(DeviceError):
            GateCalibration("cx", (0, 1), 1.5, 100.0)

    def test_gate_name_normalised(self):
        assert GateCalibration("CX", (0, 1), 0.01, 100.0).name == "cx"

    def test_readout_error_rate_average(self):
        qcal = QubitCalibration(t1=10, t2=10, readout_p0_given_1=0.06,
                                readout_p1_given_0=0.02)
        assert qcal.readout_error_rate == pytest.approx(0.04)


class TestDeviceModel:
    def test_qubit_calibration_count_checked(self):
        coupling = CouplingMap([(0, 1)], num_qubits=2)
        with pytest.raises(DeviceError, match="calibrations"):
            DeviceModel("bad", coupling, ("cx",), [], [])

    def test_gate_calibration_lookup(self):
        device = tiny_device()
        assert device.gate_calibration("cx", (0, 1)).error_rate == pytest.approx(0.02)
        assert device.gate_calibration("cx", (1, 0)) is None

    def test_default_gate_calibration(self):
        coupling = CouplingMap([(0, 1)], num_qubits=2)
        qubits = [
            QubitCalibration(t1=10_000, t2=10_000, readout_p0_given_1=0.0,
                             readout_p1_given_0=0.0)
        ] * 2
        device = DeviceModel(
            "defaults", coupling, ("u3", "cx"), qubits,
            [GateCalibration("u3", (), 1e-3, 0.0)],
        )
        assert device.gate_calibration("u3", (1,)).error_rate == pytest.approx(1e-3)

    def test_average_cx_error(self):
        assert tiny_device().average_cx_error() == pytest.approx(0.02)


class TestNoiseModelCompilation:
    def test_zero_scale_is_ideal(self):
        assert tiny_device().noise_model(scale=0.0).is_ideal()

    def test_negative_scale_rejected(self):
        with pytest.raises(DeviceError):
            tiny_device().noise_model(scale=-1.0)

    def test_noisy_gates_registered(self):
        model = tiny_device().noise_model()
        assert "cx" in model.noisy_gates
        assert "u3" in model.noisy_gates

    def test_readout_confusion_compiled(self):
        model = tiny_device().noise_model()
        matrix = model.readout_confusion(0)
        assert matrix[0][1] == pytest.approx(0.05)
        assert matrix[1][0] == pytest.approx(0.02)

    def test_scale_multiplies_readout(self):
        model = tiny_device().noise_model(scale=2.0)
        assert model.readout_confusion(0)[0][1] == pytest.approx(0.10)

    def test_error_rates_shape_simulation(self):
        """End-to-end sanity: a noisier scale gives a higher error rate."""
        from repro.circuits.circuit import QuantumCircuit
        from repro.simulators.density_matrix import DensityMatrixSimulator

        device = tiny_device()
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])

        def error_rate(scale):
            sim = DensityMatrixSimulator(noise_model=device.noise_model(scale))
            probs = sim.run(qc, shots=1).probabilities
            return 1.0 - probs.get("00", 0.0)

        low, high = error_rate(0.5), error_rate(4.0)
        assert low < high
        assert 0.0 < low < 0.2
