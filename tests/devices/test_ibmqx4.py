"""Tests for the ibmqx4 device model (the paper's hardware substrate)."""

import pytest

from repro.devices.ibmqx4 import IBMQX4_EDGES, ibmqx4


class TestTopology:
    def test_five_qubits(self, ibmqx4_device):
        assert ibmqx4_device.num_qubits == 5

    def test_directed_bowtie_edges(self, ibmqx4_device):
        assert set(ibmqx4_device.coupling_map.directed_edges) == set(IBMQX4_EDGES)

    def test_paper_table1_constraint(self, ibmqx4_device):
        """CX(q1 -> q2) is NOT native — the paper had to fix direction."""
        cmap = ibmqx4_device.coupling_map
        assert not cmap.supports(1, 2)
        assert cmap.supports(2, 1)

    def test_paper_table2_ancilla_choice(self, ibmqx4_device):
        """Both parity CNOTs (q1 -> q0, q2 -> q0) are native, which is why
        the paper used q0 as the entanglement-assertion ancilla."""
        cmap = ibmqx4_device.coupling_map
        assert cmap.supports(1, 0)
        assert cmap.supports(2, 0)

    def test_connected(self, ibmqx4_device):
        assert ibmqx4_device.coupling_map.is_connected()


class TestCalibration:
    def test_basis_gates(self, ibmqx4_device):
        assert set(ibmqx4_device.basis_gates) == {"u1", "u2", "u3", "cx"}

    def test_cx_error_rates_in_hardware_regime(self, ibmqx4_device):
        for edge in IBMQX4_EDGES:
            cal = ibmqx4_device.gate_calibration("cx", edge)
            assert cal is not None
            assert 0.01 < cal.error_rate < 0.08

    def test_u1_is_virtual(self, ibmqx4_device):
        for qubit in range(5):
            cal = ibmqx4_device.gate_calibration("u1", (qubit,))
            assert cal.error_rate == 0.0
            assert cal.duration_ns == 0.0

    def test_readout_errors_in_regime(self, ibmqx4_device):
        for qcal in ibmqx4_device.qubit_calibrations:
            assert 0.01 < qcal.readout_error_rate < 0.10

    def test_t2_physical(self, ibmqx4_device):
        for qcal in ibmqx4_device.qubit_calibrations:
            assert qcal.t2 <= 2 * qcal.t1

    def test_noise_model_compiles(self, ibmqx4_device):
        model = ibmqx4_device.noise_model()
        assert not model.is_ideal()
        assert "cx" in model.noisy_gates
        for qubit in range(5):
            assert model.readout_confusion(qubit) is not None
