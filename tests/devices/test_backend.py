"""Tests for the execution backends."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import (
    Backend,
    DensityMatrixBackend,
    NoisyDeviceBackend,
    StabilizerBackend,
    StatevectorBackend,
    TrajectoryDeviceBackend,
)
from repro.exceptions import DeviceError


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


class TestIdealBackends:
    def test_abstract_backend_raises(self):
        with pytest.raises(NotImplementedError):
            Backend().run(QuantumCircuit(1))

    @pytest.mark.parametrize(
        "backend_cls", [StatevectorBackend, DensityMatrixBackend, StabilizerBackend]
    )
    def test_bell_distribution(self, backend_cls):
        result = backend_cls().run(measured_bell(), shots=2000, seed=3)
        assert set(result.counts) == {"00", "11"}
        assert result.counts.shots == 2000

    def test_repr(self):
        assert "statevector" in repr(StatevectorBackend())


class TestNoisyDeviceBackend:
    def test_runs_transpiled(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device, noise_scale=1.0)
        result = backend.run(measured_bell(), shots=2000, seed=4)
        # Noise spreads mass beyond the Bell outcomes.
        assert result.counts.get("00", 0) + result.counts.get("11", 0) < 2000
        assert result.metadata["device"] == "ibmqx4"
        ops = result.metadata["transpiled_ops"]
        assert set(ops) <= {"u1", "u2", "u3", "cx", "measure", "barrier"}

    def test_zero_scale_is_noiseless(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device, noise_scale=0.0)
        result = backend.run(measured_bell(), shots=500, seed=5)
        assert set(result.counts) == {"00", "11"}

    def test_too_many_qubits_rejected(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device)
        with pytest.raises(DeviceError, match="has 5"):
            backend.run(QuantumCircuit(6))

    def test_no_transpile_mode_requires_native(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device, transpile=False)
        qc = QuantumCircuit(5, 1)
        qc.cx(2, 1)  # native direction
        qc.measure(1, 0)
        result = backend.run(qc, shots=100, seed=6)
        assert result.counts.shots == 100

    def test_prepare_returns_native_circuit(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device)
        prepared = backend.prepare(measured_bell())
        for inst in prepared.data:
            if inst.name == "cx":
                assert ibmqx4_device.coupling_map.supports(*inst.qubits)


class TestTrajectoryDeviceBackend:
    def test_matches_noisy_dm_backend_roughly(self, ibmqx4_device):
        dm = NoisyDeviceBackend(ibmqx4_device)
        tj = TrajectoryDeviceBackend(ibmqx4_device)
        circuit = measured_bell()
        exact = dm.run(circuit, shots=1, seed=1).probabilities
        sampled = tj.run(circuit, shots=4000, seed=1).counts
        for key, p in exact.items():
            assert abs(sampled.get(key, 0) / 4000 - p) < 0.06

    def test_size_validation(self, ibmqx4_device):
        with pytest.raises(DeviceError):
            TrajectoryDeviceBackend(ibmqx4_device).run(QuantumCircuit(7))
