"""Tests for coupling maps."""

import pytest

from repro.devices.topology import CouplingMap
from repro.exceptions import DeviceError


def bowtie():
    """The ibmqx4 directed bow-tie."""
    return CouplingMap([(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)], num_qubits=5)


class TestConstruction:
    def test_inferred_size(self):
        assert CouplingMap([(0, 1), (1, 2)]).num_qubits == 3

    def test_explicit_size_validated(self):
        with pytest.raises(DeviceError, match="smaller"):
            CouplingMap([(0, 5)], num_qubits=3)

    def test_self_loop_rejected(self):
        with pytest.raises(DeviceError, match="self-loop"):
            CouplingMap([(1, 1)])

    def test_negative_index_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap([(-1, 0)])


class TestQueries:
    def test_directed_support(self):
        cmap = bowtie()
        assert cmap.supports(2, 1)
        assert not cmap.supports(1, 2)

    def test_undirected_connectivity(self):
        cmap = bowtie()
        assert cmap.connected(1, 2)
        assert cmap.connected(2, 1)
        assert not cmap.connected(0, 4)

    def test_neighbors(self):
        assert bowtie().neighbors(2) == [0, 1, 3, 4]

    def test_distance(self):
        cmap = bowtie()
        assert cmap.distance(0, 1) == 1
        assert cmap.distance(0, 4) == 2
        assert cmap.distance(0, 0) == 0

    def test_shortest_path_endpoints(self):
        path = bowtie().shortest_path(0, 3)
        assert path[0] == 0
        assert path[-1] == 3
        assert len(path) == 3  # through q2

    def test_disconnected_distance_raises(self):
        cmap = CouplingMap([(0, 1)], num_qubits=3)
        with pytest.raises(DeviceError, match="disconnected"):
            cmap.distance(0, 2)

    def test_is_connected(self):
        assert bowtie().is_connected()
        assert not CouplingMap([(0, 1)], num_qubits=3).is_connected()

    def test_distance_matrix_symmetry(self):
        matrix = bowtie().distance_matrix()
        for (a, b), d in matrix.items():
            assert matrix[(b, a)] == d

    def test_qubit_range_checked(self):
        with pytest.raises(DeviceError, match="out of range"):
            bowtie().neighbors(9)

    def test_edge_listings(self):
        cmap = bowtie()
        assert (2, 4) in cmap.directed_edges
        assert (2, 4) in cmap.undirected_edges
        assert (4, 2) not in cmap.undirected_edges  # canonical sorted form
