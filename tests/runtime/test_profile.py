"""Tests for the online cost model (:mod:`repro.runtime.profile`)."""

import threading

import pytest

from repro.runtime.profile import (
    EWMA_ALPHA,
    FLUSH_EVERY,
    CostModel,
    profile_key,
)


class TestProfileKey:
    def test_backend_name_and_qubits(self):
        from repro.circuits import library
        from repro.runtime import get_backend

        bell = library.bell_pair()
        ghz = library.ghz_state(3)
        stab = get_backend("stabilizer")
        noisy = get_backend("noisy:ibmqx4")
        assert profile_key(stab, bell) == ("stabilizer", 2)
        assert profile_key(noisy, bell) == ("noisy(ibmqx4)", 2)
        assert profile_key(stab, ghz) != profile_key(stab, bell)

    def test_seeds_and_shots_do_not_participate(self):
        """The key is (engine, size) — nothing run-specific."""
        from repro.circuits import library
        from repro.runtime import get_backend

        key = profile_key(get_backend("stabilizer"), library.bell_pair())
        assert key == ("stabilizer", 2)


class TestObservation:
    def test_first_sample_initialises_directly(self):
        model = CostModel()
        model.observe_run(("engine", 2), shots=100, elapsed=1.0)
        assert model.per_shot(("engine", 2)) == pytest.approx(0.01)

    def test_ewma_update(self):
        model = CostModel()
        key = ("engine", 2)
        model.observe_run(key, shots=10, elapsed=1.0)   # 0.1 s/shot
        model.observe_run(key, shots=10, elapsed=2.0)   # 0.2 s/shot
        expected = (1 - EWMA_ALPHA) * 0.1 + EWMA_ALPHA * 0.2
        assert model.per_shot(key) == pytest.approx(expected)
        assert model.profile(key)["shot_samples"] == 2

    def test_prepare_observations_are_separate(self):
        model = CostModel()
        key = ("engine", 2)
        model.observe_prepare(key, 0.5)
        assert model.per_prepare(key) == pytest.approx(0.5)
        assert model.per_shot(key) is None

    def test_unknown_key_estimates_none(self):
        model = CostModel()
        assert model.per_shot(("never-seen", 9)) is None
        assert model.estimate_run(("never-seen", 9), 1000) is None
        assert model.profile(("never-seen", 9)) is None

    def test_estimate_run_scales_with_shots(self):
        model = CostModel()
        model.observe_run(("engine", 2), shots=10, elapsed=1.0)
        assert model.estimate_run(("engine", 2), 500) == pytest.approx(50.0)

    def test_garbage_observations_ignored(self):
        model = CostModel()
        key = ("engine", 2)
        model.observe_run(key, shots=0, elapsed=1.0)
        model.observe_run(key, shots=10, elapsed=-1.0)
        model.observe_run(key, shots=10, elapsed=float("nan"))
        assert model.per_shot(key) is None

    def test_concurrent_observations_all_counted(self):
        model = CostModel()
        key = ("engine", 3)

        def hammer():
            for _ in range(200):
                model.observe_run(key, shots=10, elapsed=0.5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert model.profile(key)["shot_samples"] == 800
        assert model.per_shot(key) == pytest.approx(0.05)


class TestPersistence:
    def test_flush_then_warm_start_in_new_model(self, tmp_path):
        first = CostModel(cache_dir=tmp_path)
        first.observe_run(("engine", 2), shots=100, elapsed=2.0)
        first.flush()
        second = CostModel(cache_dir=tmp_path)
        assert second.per_shot(("engine", 2)) == pytest.approx(0.02)
        assert second.profile(("engine", 2))["shot_samples"] == 1

    def test_auto_flush_after_enough_observations(self, tmp_path):
        model = CostModel(cache_dir=tmp_path)
        for _ in range(FLUSH_EVERY):
            model.observe_run(("engine", 2), shots=10, elapsed=1.0)
        # No explicit flush: the write-through already happened.
        fresh = CostModel(cache_dir=tmp_path)
        assert fresh.per_shot(("engine", 2)) is not None

    def test_flush_all_entries(self, tmp_path):
        model = CostModel()
        model.observe_run(("engine", 2), shots=10, elapsed=1.0)
        model.attach_disk(tmp_path)
        assert model.flush(all_entries=True) == 1
        assert CostModel(cache_dir=tmp_path).per_shot(("engine", 2)) is not None

    def test_corrupt_persisted_entry_is_a_fresh_start(self, tmp_path):
        model = CostModel(cache_dir=tmp_path)
        model.observe_run(("engine", 2), shots=10, elapsed=1.0)
        model.flush()
        for entry in (tmp_path / "profile").glob("*.entry"):
            blob = bytearray(entry.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            entry.write_bytes(bytes(blob))
        fresh = CostModel(cache_dir=tmp_path)
        assert fresh.per_shot(("engine", 2)) is None
        # ... and the fresh model still learns and persists normally.
        fresh.observe_run(("engine", 2), shots=10, elapsed=1.0)
        assert fresh.per_shot(("engine", 2)) == pytest.approx(0.1)

    def test_foreign_payload_rejected(self, tmp_path):
        """A wrong-schema dict under the right key must not poison estimates."""
        probe = CostModel(cache_dir=tmp_path)
        probe._store.store(("engine", 2), {"per_shot": "fast"})
        fresh = CostModel(cache_dir=tmp_path)
        assert fresh.per_shot(("engine", 2)) is None

    def test_clear_drops_live_estimates_and_does_not_resurrect(self, tmp_path):
        model = CostModel(cache_dir=tmp_path)
        model.observe_run(("engine", 2), shots=10, elapsed=1.0)
        model.flush()
        model.clear()
        assert model.per_shot(("engine", 2)) is None
        # A post-clear flush must not write the wiped entries back.
        model.flush(all_entries=True)
        assert CostModel(cache_dir=tmp_path).per_shot(("engine", 2)) is None

    def test_reading_before_attach_does_not_clobber_warm_profile(self, tmp_path):
        """Regression: a cold read creates an empty live entry; attaching a
        warm disk tier afterwards (the CLI --cache-dir path) must surface
        the persisted estimate, and flushing must not overwrite it."""
        warm = CostModel(cache_dir=tmp_path)
        warm.observe_run(("engine", 2), shots=10, elapsed=1.0)
        warm.flush()

        late = CostModel()  # memory-only, like the default before --cache-dir
        assert late.per_shot(("engine", 2)) is None  # creates the empty entry
        late.attach_disk(tmp_path)
        late.flush(all_entries=True)  # what set_default_cache_dir does
        assert late.per_shot(("engine", 2)) == pytest.approx(0.1)
        assert CostModel(cache_dir=tmp_path).per_shot(
            ("engine", 2)
        ) == pytest.approx(0.1)

    def test_flush_never_writes_sample_less_entries(self, tmp_path):
        model = CostModel(cache_dir=tmp_path)
        assert model.per_shot(("empty", 1)) is None
        assert model.flush(all_entries=True) == 0
        assert list((tmp_path / "profile").glob("*.entry")) == []

    def test_keys_spans_live_and_persisted(self, tmp_path):
        writer = CostModel(cache_dir=tmp_path)
        writer.observe_run(("persisted", 2), shots=10, elapsed=1.0)
        writer.flush()
        reader = CostModel(cache_dir=tmp_path)
        reader.observe_run(("live", 2), shots=10, elapsed=1.0)
        assert set(reader.keys()) >= {("persisted", 2), ("live", 2)}


class TestExecuteFeedsDefaultModel:
    def test_completed_chunks_observed(self):
        from repro.circuits import library
        from repro.runtime import DEFAULT_COST_MODEL, execute, get_backend

        backend = get_backend("stabilizer")
        circuit = library.ghz_state(4)
        circuit.measure_all()
        key = profile_key(backend, circuit)
        before = (DEFAULT_COST_MODEL.profile(key) or {}).get("shot_samples", 0)
        execute(circuit, backend, shots=64, seed=1, executor="serial").result()
        after = DEFAULT_COST_MODEL.profile(key)["shot_samples"]
        assert after == before + 1
        assert DEFAULT_COST_MODEL.per_shot(key) > 0

    def test_fixed_schedule_still_observes(self):
        """Profiling is passive: fixed runs feed the model too."""
        from repro.circuits import library
        from repro.runtime import DEFAULT_COST_MODEL, execute, get_backend

        backend = get_backend("stabilizer")
        circuit = library.ghz_state(5)
        circuit.measure_all()
        key = profile_key(backend, circuit)
        before = (DEFAULT_COST_MODEL.profile(key) or {}).get("shot_samples", 0)
        execute(
            circuit, backend, shots=64, seed=2, executor="serial",
            schedule="fixed",
        ).result()
        assert DEFAULT_COST_MODEL.profile(key)["shot_samples"] == before + 1

    def test_cost_model_stats_shape(self):
        from repro.runtime import cost_model_stats

        stats = cost_model_stats()
        assert "profiles" in stats
        for label, entry in stats["profiles"].items():
            assert "/q" in label
            assert set(entry) == {
                "per_shot", "per_prepare", "shot_samples", "prepare_samples",
            }
