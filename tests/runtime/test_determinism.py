"""Satellite: seed determinism across serial / parallel / chunked execution.

The runtime's contract is that a caller seed pins the counts regardless of
how the work is scheduled: one worker or many, whole jobs or shot chunks,
cold or warm transpile cache.  These tests pin that contract on all four
backend families (statevector, density-matrix, stabilizer, trajectory).
"""

import pytest

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import TranspileCache, execute, get_backend

#: All four backend families; trajectory at scale 0.25 keeps it fast.
BACKEND_SPECS = [
    ("statevector", {}),
    ("density_matrix", {}),
    ("stabilizer", {}),
    ("trajectory:ibmqx4", {"noise_scale": 0.25}),
]


def instrumented_circuit():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


@pytest.mark.parametrize("spec, options", BACKEND_SPECS)
class TestSeedDeterminism:
    def test_serial_equals_parallel(self, spec, options):
        circuits = [instrumented_circuit() for _ in range(4)]
        shots, seed = 256, 99
        serial = execute(
            circuits, get_backend(spec, **options), shots=shots, seed=seed,
            max_workers=1, dedupe=False,
        ).counts()
        parallel = execute(
            circuits, get_backend(spec, **options), shots=shots, seed=seed,
            max_workers=4, dedupe=False,
        ).counts()
        assert [dict(c) for c in serial] == [dict(c) for c in parallel]

    def test_serial_equals_chunked_parallel(self, spec, options):
        circuit = instrumented_circuit()
        chunked_serial = execute(
            circuit, get_backend(spec, **options), shots=256, seed=41,
            chunk_shots=64, max_workers=1,
        ).counts()
        chunked_parallel = execute(
            circuit, get_backend(spec, **options), shots=256, seed=41,
            chunk_shots=64, max_workers=4,
        ).counts()
        assert dict(chunked_serial) == dict(chunked_parallel)

    def test_chunked_total_is_preserved(self, spec, options):
        result = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=250,
            seed=11, chunk_shots=64, max_workers=4,
        ).result()
        assert result.counts.shots == 250

    def test_same_seed_same_counts_across_calls(self, spec, options):
        first = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=128, seed=5
        ).counts()
        second = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=128, seed=5
        ).counts()
        assert dict(first) == dict(second)


class TestCacheDeterminism:
    """Fingerprint-cache hits must never change results."""

    @pytest.mark.parametrize("family", ["noisy", "trajectory"])
    def test_cold_vs_warm_cache(self, family):
        circuit = instrumented_circuit()
        scale = 0.25 if family == "trajectory" else 1.0
        shots = 128 if family == "trajectory" else 1024
        cache = TranspileCache()
        backend = get_backend(
            f"{family}:ibmqx4", noise_scale=scale, cache=cache
        )
        cold = backend.run(circuit, shots=shots, seed=13)
        warm = backend.run(circuit, shots=shots, seed=13)
        uncached = get_backend(
            f"{family}:ibmqx4", noise_scale=scale, cache=False
        ).run(circuit, shots=shots, seed=13)
        assert cache.hits >= 1
        assert dict(cold.counts) == dict(warm.counts) == dict(uncached.counts)

    def test_warm_cache_inside_batch(self):
        circuits = [instrumented_circuit() for _ in range(6)]
        cache = TranspileCache()
        backend = get_backend("noisy:ibmqx4", cache=cache)
        batch_counts = execute(
            circuits, backend, shots=512, seed=8, max_workers=3, dedupe=False
        ).counts()
        reference = get_backend("noisy:ibmqx4", cache=False).run(
            circuits[0], shots=512, seed=8
        )
        for counts in batch_counts:
            assert dict(counts) == dict(reference.counts)
