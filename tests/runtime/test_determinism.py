"""Satellite: seed determinism across executors, chunking and caches.

The runtime's contract is that a caller seed pins the counts regardless of
how the work is scheduled: serial, thread or process executor, one worker
or many, whole jobs or shot chunks, cold or warm transpile cache, fresh
simulation or distribution-cache re-sampling.  These tests pin that
contract on all four backend families (statevector, density-matrix,
stabilizer, trajectory).
"""

import pytest

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import DistributionCache, TranspileCache, execute, get_backend
from repro.runtime.pool import EXECUTOR_KINDS

#: All four backend families; trajectory at scale 0.25 keeps it fast.
BACKEND_SPECS = [
    ("statevector", {}),
    ("density_matrix", {}),
    ("stabilizer", {}),
    ("trajectory:ibmqx4", {"noise_scale": 0.25}),
]


def instrumented_circuit():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


@pytest.mark.parametrize("spec, options", BACKEND_SPECS)
class TestSeedDeterminism:
    def test_serial_equals_parallel(self, spec, options):
        circuits = [instrumented_circuit() for _ in range(4)]
        shots, seed = 256, 99
        serial = execute(
            circuits, get_backend(spec, **options), shots=shots, seed=seed,
            max_workers=1, dedupe=False,
        ).counts()
        parallel = execute(
            circuits, get_backend(spec, **options), shots=shots, seed=seed,
            max_workers=4, dedupe=False,
        ).counts()
        assert [dict(c) for c in serial] == [dict(c) for c in parallel]

    def test_serial_equals_chunked_parallel(self, spec, options):
        circuit = instrumented_circuit()
        chunked_serial = execute(
            circuit, get_backend(spec, **options), shots=256, seed=41,
            chunk_shots=64, max_workers=1,
        ).counts()
        chunked_parallel = execute(
            circuit, get_backend(spec, **options), shots=256, seed=41,
            chunk_shots=64, max_workers=4,
        ).counts()
        assert dict(chunked_serial) == dict(chunked_parallel)

    def test_chunked_total_is_preserved(self, spec, options):
        result = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=250,
            seed=11, chunk_shots=64, max_workers=4,
        ).result()
        assert result.counts.shots == 250

    def test_same_seed_same_counts_across_calls(self, spec, options):
        first = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=128, seed=5
        ).counts()
        second = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=128, seed=5
        ).counts()
        assert dict(first) == dict(second)


@pytest.mark.parametrize("spec, options", BACKEND_SPECS)
class TestExecutorDeterminism:
    """v2 contract: every executor kind draws bit-identical counts.

    The serial executor is the reference (it is the sequential loop); the
    thread and process pools must reproduce it exactly, unchunked and
    chunked, on all four backend families.  The process comparison also
    exercises the pickling path for circuits, backends and results.
    """

    def test_all_executors_agree_unchunked(self, spec, options):
        circuits = [instrumented_circuit() for _ in range(3)]
        reference = execute(
            circuits, get_backend(spec, **options), shots=128, seed=17,
            executor="serial", dedupe=False,
        ).counts()
        for kind in ("thread", "process"):
            counts = execute(
                circuits, get_backend(spec, **options), shots=128, seed=17,
                executor=kind, dedupe=False,
            ).counts()
            assert [dict(c) for c in counts] == [dict(c) for c in reference], kind

    def test_all_executors_agree_chunked(self, spec, options):
        reference = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=200,
            seed=23, chunk_shots=64, executor="serial",
        ).counts()
        for kind in ("thread", "process"):
            counts = execute(
                instrumented_circuit(), get_backend(spec, **options), shots=200,
                seed=23, chunk_shots=64, executor=kind, max_workers=3,
            ).counts()
            assert dict(counts) == dict(reference), kind

    def test_chunked_equals_unchunked_per_executor(self, spec, options):
        """Chunking changes the seed schedule deterministically: whatever
        counts a chunking choice produces, every executor kind must produce
        the same ones."""
        for chunk_shots in (None, 50):
            per_kind = {
                kind: dict(
                    execute(
                        instrumented_circuit(), get_backend(spec, **options),
                        shots=150, seed=31, chunk_shots=chunk_shots,
                        executor=kind,
                    ).counts()
                )
                for kind in EXECUTOR_KINDS
            }
            assert per_kind["serial"] == per_kind["thread"] == per_kind["process"]

    def test_executor_kind_stable_across_calls(self, spec, options):
        first = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=96,
            seed=13, executor="process",
        ).counts()
        second = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=96,
            seed=13, executor="process",
        ).counts()
        assert dict(first) == dict(second)


class TestDistributionCacheDeterminism:
    """Cross-call cache hits must re-draw the exact fresh-run counts."""

    @pytest.mark.parametrize("spec", ["density_matrix", "noisy:ibmqx4"])
    def test_cold_vs_warm_distribution_cache(self, spec):
        cache = DistributionCache()
        backend = get_backend(spec)
        cold = execute(
            instrumented_circuit(), backend, shots=256, seed=41,
            distribution_cache=cache,
        )
        cold_counts = dict(cold.counts())  # collection populates the cache
        warm = execute(
            instrumented_circuit(), backend, shots=256, seed=41,
            distribution_cache=cache,
        )
        assert not cold.cached and warm.cached
        assert cold_counts == dict(warm.counts())

    def test_warm_hit_matches_every_executor(self):
        cache = DistributionCache()
        backend = get_backend("noisy:ibmqx4")
        execute(
            instrumented_circuit(), backend, shots=128, seed=3,
            distribution_cache=cache,
        ).result()
        fresh = execute(
            instrumented_circuit(), backend, shots=128, seed=8, executor="serial"
        ).counts()
        for kind in EXECUTOR_KINDS:
            cached = execute(
                instrumented_circuit(), backend, shots=128, seed=8,
                executor=kind, distribution_cache=cache,
            ).counts()
            assert dict(cached) == dict(fresh), kind


class TestCacheDeterminism:
    """Fingerprint-cache hits must never change results."""

    @pytest.mark.parametrize("family", ["noisy", "trajectory"])
    def test_cold_vs_warm_cache(self, family):
        circuit = instrumented_circuit()
        scale = 0.25 if family == "trajectory" else 1.0
        shots = 128 if family == "trajectory" else 1024
        cache = TranspileCache()
        backend = get_backend(
            f"{family}:ibmqx4", noise_scale=scale, cache=cache
        )
        cold = backend.run(circuit, shots=shots, seed=13)
        warm = backend.run(circuit, shots=shots, seed=13)
        uncached = get_backend(
            f"{family}:ibmqx4", noise_scale=scale, cache=False
        ).run(circuit, shots=shots, seed=13)
        assert cache.hits >= 1
        assert dict(cold.counts) == dict(warm.counts) == dict(uncached.counts)

    def test_warm_cache_inside_batch(self):
        circuits = [instrumented_circuit() for _ in range(6)]
        cache = TranspileCache()
        backend = get_backend("noisy:ibmqx4", cache=cache)
        batch_counts = execute(
            circuits, backend, shots=512, seed=8, max_workers=3, dedupe=False
        ).counts()
        reference = get_backend("noisy:ibmqx4", cache=False).run(
            circuits[0], shots=512, seed=8
        )
        for counts in batch_counts:
            assert dict(counts) == dict(reference.counts)
