"""Satellite: ``schedule="adaptive"`` is bit-identical to ``schedule="fixed"``.

The adaptive scheduler may re-route executors, re-size unseeded chunks and
re-order dispatch — but for a fixed seed the counts contract is absolute:
counts are a pure function of ``(circuit, backend, shots, seed,
chunk_shots)``, so both scheduling modes must draw exactly the same
histograms on every backend family and every executor kind, cold or warm
cost model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import DEFAULT_COST_MODEL, execute, get_backend, profile_key
from repro.runtime.pool import EXECUTOR_KINDS

#: All four backend families; trajectory at scale 0.25 keeps it fast.
BACKEND_SPECS = [
    ("statevector", {}),
    ("density_matrix", {}),
    ("stabilizer", {}),
    ("trajectory:ibmqx4", {"noise_scale": 0.25}),
]


def instrumented_circuit():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


@pytest.mark.parametrize("spec, options", BACKEND_SPECS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
class TestAdaptiveEqualsFixedMatrix:
    """The acceptance matrix: 4 backend families x 3 executors."""

    def test_unchunked_seeded(self, spec, options, kind):
        adaptive = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=192,
            seed=37, executor=kind, max_workers=3, schedule="adaptive",
        ).counts()
        fixed = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=192,
            seed=37, executor=kind, max_workers=3, schedule="fixed",
        ).counts()
        assert dict(adaptive) == dict(fixed)

    def test_explicit_chunking_seeded(self, spec, options, kind):
        adaptive = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=192,
            seed=23, chunk_shots=64, executor=kind, max_workers=3,
            schedule="adaptive",
        ).counts()
        fixed = execute(
            instrumented_circuit(), get_backend(spec, **options), shots=192,
            seed=23, chunk_shots=64, executor=kind, max_workers=3,
            schedule="fixed",
        ).counts()
        assert dict(adaptive) == dict(fixed)

    def test_batch_with_dedupe(self, spec, options, kind):
        circuits = [instrumented_circuit() for _ in range(3)]
        backend = get_backend(spec, **options)
        adaptive = execute(
            circuits, backend, shots=128, seed=[5, 6, 5], executor=kind,
            max_workers=3, schedule="adaptive",
        ).counts()
        fixed = execute(
            circuits, backend, shots=128, seed=[5, 6, 5], executor=kind,
            max_workers=3, schedule="fixed",
        ).counts()
        assert [dict(c) for c in adaptive] == [dict(c) for c in fixed]


class TestWarmProfileNeverLeaksIntoSeededCounts:
    """A learned profile must not change a seeded call's histogram."""

    @pytest.mark.parametrize("spec, options", BACKEND_SPECS)
    def test_heavily_warmed_model_same_counts(self, spec, options):
        backend = get_backend(spec, **options)
        circuit = instrumented_circuit()
        baseline = execute(
            circuit, backend, shots=160, seed=71, executor="serial",
            max_workers=4, schedule="adaptive",
        ).counts()
        # Teach the model an enormous per-shot cost: if seeded adaptive
        # chunking existed, this would force a split and change counts.
        DEFAULT_COST_MODEL.observe_run(profile_key(backend, circuit), 10, 1000.0)
        warmed = execute(
            circuit, backend, shots=160, seed=71, executor="serial",
            max_workers=4, schedule="adaptive",
        ).counts()
        assert dict(warmed) == dict(baseline)


class TestHypothesisScheduleEquivalence:
    """Property: any (shots, seed, chunk_shots) draws identical counts
    under both scheduling modes."""

    @settings(max_examples=15, deadline=None)
    @given(
        shots=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk=st.one_of(st.none(), st.integers(min_value=16, max_value=128)),
    )
    def test_per_shot_engine(self, shots, seed, chunk):
        backend = get_backend("stabilizer")
        adaptive = execute(
            instrumented_circuit(), backend, shots=shots, seed=seed,
            chunk_shots=chunk, executor="serial", max_workers=4,
            schedule="adaptive",
        ).counts()
        fixed = execute(
            instrumented_circuit(), backend, shots=shots, seed=seed,
            chunk_shots=chunk, executor="serial", max_workers=4,
            schedule="fixed",
        ).counts()
        assert dict(adaptive) == dict(fixed)

    @settings(max_examples=10, deadline=None)
    @given(
        shots=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_exact_engine(self, shots, seed):
        backend = get_backend("statevector")
        adaptive = execute(
            instrumented_circuit(), backend, shots=shots, seed=seed,
            executor="serial", schedule="adaptive",
        ).counts()
        fixed = execute(
            instrumented_circuit(), backend, shots=shots, seed=seed,
            executor="serial", schedule="fixed",
        ).counts()
        assert dict(adaptive) == dict(fixed)
