"""Tests for chunk retries and self-healing pools (PR 10's runtime half).

Covers the :mod:`repro.runtime.retry` policy layer, fault-injected chunk
retries (counts must stay bit-identical to a clean run), the job-wide
retry budget, the as_completed barrier under submit-time failures, and
the acceptance scenario: a process-pool worker hard-crash mid-job heals
via pool rebuild + resubmission with zero failed jobs.
"""

import random

import pytest

from repro import faults
from repro.circuits import library
from repro.exceptions import JobError
from repro.faults import FaultPlan
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import RetryPolicy, execute, pool_stats
from repro.runtime.job import JobStatus
from repro.runtime.retry import (
    DEFAULT_MAX_RETRIES,
    RETRY_ENV_VAR,
    backoff_rng,
    next_backoff,
    resolve_retry_policy,
)

#: Fast backoffs so failure-path tests don't sleep their way through CI.
FAST = {"backoff_s": 0.001, "max_backoff_s": 0.005}


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


@pytest.fixture(autouse=True)
def no_ambient_state(monkeypatch):
    monkeypatch.delenv(RETRY_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.deactivate()
    yield
    faults.deactivate()


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == DEFAULT_MAX_RETRIES
        assert policy.retry_budget is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="retry_budget"):
            RetryPolicy(retry_budget=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=2.0, max_backoff_s=1.0)


class TestResolveRetryPolicy:
    def test_none_uses_defaults(self):
        policy = resolve_retry_policy(None)
        assert policy.max_retries == DEFAULT_MAX_RETRIES

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(RETRY_ENV_VAR, "5")
        assert resolve_retry_policy(None).max_retries == 5
        monkeypatch.setenv(RETRY_ENV_VAR, "0")
        assert resolve_retry_policy(None) is None
        monkeypatch.setenv(RETRY_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=RETRY_ENV_VAR):
            resolve_retry_policy(None)

    def test_disabled_forms(self):
        assert resolve_retry_policy(False) is None
        assert resolve_retry_policy(0) is None
        assert resolve_retry_policy(RetryPolicy(max_retries=0)) is None
        assert resolve_retry_policy({"max_retries": 0}) is None

    def test_enabled_forms(self):
        assert resolve_retry_policy(True).max_retries == DEFAULT_MAX_RETRIES
        assert resolve_retry_policy(3).max_retries == 3
        policy = resolve_retry_policy({"max_retries": 4, "retry_budget": 8})
        assert (policy.max_retries, policy.retry_budget) == (4, 8)
        explicit = RetryPolicy(max_retries=1)
        assert resolve_retry_policy(explicit) is explicit

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_retry_policy("twice")


class TestBackoff:
    def test_next_backoff_bounds(self):
        policy = RetryPolicy(backoff_s=0.02, max_backoff_s=0.5)
        rng = random.Random(0)
        previous = 0.0
        for _ in range(50):
            sleep = next_backoff(policy, previous, rng)
            assert policy.backoff_s <= sleep <= policy.max_backoff_s
            previous = sleep

    def test_backoff_rng_deterministic(self):
        a = backoff_rng(7, 3, 1).random()
        b = backoff_rng(7, 3, 1).random()
        assert a == b
        assert backoff_rng(7, 3, 2).random() != a
        # Seedless jobs still get a usable (stable) jitter stream.
        assert backoff_rng(None, 0, 1).random() == backoff_rng(0, 0, 1).random()


class TestChunkRetryIntegration:
    def test_retried_chunk_counts_bit_identical(self):
        clean = execute(measured_bell(), "statevector", shots=256, seed=11,
                        chunk_shots=64, executor="thread",
                        retry=False).result()
        plan = FaultPlan(seed=3, sites={
            "chunk.simulate": {"rate": 1.0, "times": 1},
        })
        job = execute(measured_bell(), "statevector", shots=256, seed=11,
                      chunk_shots=64, executor="thread",
                      retry=dict(max_retries=2, **FAST), fault_plan=plan)
        result = job.result()
        assert job.retries == 1
        assert result.counts == clean.counts
        assert plan.stats()["chunk.simulate"]["fired"] == 1

    def test_retries_disabled_fail_fast(self):
        plan = {"seed": 1, "sites": {"chunk.simulate": {"rate": 1.0,
                                                        "times": 1}}}
        job = execute(measured_bell(), "statevector", shots=64, seed=2,
                      executor="thread", retry=False, fault_plan=plan)
        with pytest.raises(JobError, match="injected fault"):
            job.result()
        assert job.status() is JobStatus.ERROR
        assert job.retries == 0

    def test_retry_budget_exhaustion_fails_job(self):
        # Every attempt faults; a budget of 1 allows one retry, then the
        # chunk's next failure is terminal.
        plan = FaultPlan(seed=1, sites={"chunk.simulate": 1.0})
        job = execute(measured_bell(), "statevector", shots=64, seed=2,
                      executor="thread",
                      retry=dict(max_retries=10, retry_budget=1, **FAST),
                      fault_plan=plan)
        with pytest.raises(JobError, match="injected fault"):
            job.result()
        assert job.retries == 1

    def test_per_chunk_cap_fails_after_max_retries(self):
        plan = FaultPlan(seed=1, sites={"chunk.simulate": 1.0})
        job = execute(measured_bell(), "statevector", shots=64, seed=2,
                      executor="thread", retry=dict(max_retries=2, **FAST),
                      fault_plan=plan)
        with pytest.raises(JobError, match="injected fault"):
            job.result()
        assert job.retries == 2  # both allowed retries were spent

    def test_ambient_plan_reaches_chunks(self):
        with faults.injected({"seed": 4, "sites": {
            "chunk.simulate": {"rate": 1.0, "times": 1},
        }}):
            job = execute(measured_bell(), "statevector", shots=64, seed=3,
                          executor="thread", retry=dict(max_retries=2, **FAST))
            job.result()
        assert job.retries == 1


class TestAsCompletedUnderFailure:
    def test_submit_time_failure_still_streams_every_job(self, monkeypatch):
        """The completion barrier arms before launch, so a chunk that dies
        at executor.submit() time still counts down — as_completed must
        yield every job exactly once, failed ones included."""
        import sys

        # repro.runtime.execute the *module* — the package re-exports the
        # function under the same name, shadowing attribute access.
        execute_module = sys.modules["repro.runtime.execute"]
        real_get_executor = execute_module.get_executor

        class RefusingExecutor:
            _repro_kind = "thread"

            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def submit(self, fn, *args, **kwargs):
                self.calls += 1
                if self.calls == 2:
                    raise RuntimeError("submit refused")
                return self.inner.submit(fn, *args, **kwargs)

        wrapper = {}

        def refusing(kind, max_workers=None):
            pool = real_get_executor(kind, max_workers)
            wrapper.setdefault("executor", RefusingExecutor(pool))
            return wrapper["executor"]

        monkeypatch.setattr(execute_module, "get_executor", refusing)
        jobs = execute([measured_bell()] * 3, "statevector", shots=32,
                       seed=[1, 2, 3], executor="thread", dedupe=False,
                       retry=False)
        seen = [job for job in jobs.as_completed(timeout=30)]
        assert len(seen) == 3
        assert {id(job) for job in seen} == {id(job) for job in jobs}
        statuses = jobs.statuses()
        assert statuses.count(JobStatus.ERROR) == 1
        assert statuses.count(JobStatus.DONE) == 2


class TestPoolSelfHealing:
    def test_worker_crash_heals_and_counts_stay_bit_identical(self):
        """Acceptance: kill a process-pool worker mid-job; the job must
        still succeed with bit-identical counts via pool rebuild +
        resubmission, without consuming the retry policy."""
        clean = execute(measured_bell(), "statevector", shots=400, seed=5,
                        chunk_shots=100, executor="process",
                        retry=False).result()
        rebuilds_before = pool_stats()["rebuilds"]
        plan = FaultPlan(seed=2, sites={
            "pool.worker_crash": {"rate": 1.0, "times": 1},
        })
        job = execute(measured_bell(), "statevector", shots=400, seed=5,
                      chunk_shots=100, executor="process",
                      retry=dict(max_retries=2, **FAST), fault_plan=plan)
        result = job.result()
        assert result.counts == clean.counts
        assert job.status() is JobStatus.DONE
        assert plan.stats()["pool.worker_crash"]["fired"] == 1
        assert job.pool_rebuilds > 0
        assert pool_stats()["rebuilds"] > rebuilds_before
        # Pool healing is not a retry: the policy budget is untouched.
        assert job.retries == 0

    def test_crash_site_ignored_off_process_executors(self):
        plan = FaultPlan(seed=2, sites={"pool.worker_crash": 1.0})
        job = execute(measured_bell(), "statevector", shots=64, seed=5,
                      executor="thread", retry=False, fault_plan=plan)
        assert job.result().counts  # the thread "worker" is us: no crash
