"""Tests for :mod:`repro.runtime.scheduler` and its execute() integration:
adaptive chunk planning, backend-aware executor defaults, the parent-side
process-fan-out prepare, and the fair-share multi-client queue.
"""

import math
import multiprocessing
import threading
import time

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend, NoisyDeviceBackend
from repro.devices.ibmqx4 import ibmqx4
from repro.exceptions import JobError, QueueTimeout
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import (
    DEFAULT_COST_MODEL,
    Scheduler,
    TranspileCache,
    execute,
    get_backend,
    profile_key,
)
from repro.runtime.cache import transpile_key
from repro.runtime.pool import EXECUTOR_ENV_VAR
from repro.runtime.profile import CostModel, prepare_profile_key
from repro.runtime.scheduler import (
    MIN_CHUNK_SHOTS,
    OVERSUBSCRIBE,
    SCHEDULE_ENV_VAR,
    executor_kind_for,
    is_per_shot_backend,
    plan_chunk_shots,
)


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


def measured_ghz(n):
    circuit = library.ghz_state(n)
    circuit.measure_all()
    return circuit


# ----------------------------------------------------------------------
# Backend classification and executor defaults
# ----------------------------------------------------------------------


class TestBackendClassification:
    def test_per_shot_engines(self):
        assert is_per_shot_backend(get_backend("stabilizer"))
        assert is_per_shot_backend(get_backend("trajectory:ibmqx4"))

    def test_exact_engines(self):
        assert not is_per_shot_backend(get_backend("statevector"))
        assert not is_per_shot_backend(get_backend("density_matrix"))
        assert not is_per_shot_backend(get_backend("noisy:ibmqx4"))

    def test_executor_kind_mapping(self):
        assert executor_kind_for(get_backend("stabilizer")) == "process"
        assert executor_kind_for(get_backend("statevector")) == "thread"


class TestExecutorDefaults:
    """Adaptive scheduling routes each job to its backend's natural pool."""

    def test_per_shot_defaults_to_process(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        job = execute(measured_bell(), "stabilizer", shots=8, seed=1,
                      schedule="adaptive")
        assert job.plan["executor"] == "process"

    def test_numpy_engine_defaults_to_thread(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        job = execute(measured_bell(), "statevector", shots=8, seed=1,
                      schedule="adaptive")
        assert job.plan["executor"] == "thread"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        job = execute(measured_bell(), "stabilizer", shots=8, seed=1,
                      schedule="adaptive")
        assert job.plan["executor"] == "serial"

    def test_explicit_executor_wins(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        job = execute(measured_bell(), "stabilizer", shots=8, seed=1,
                      schedule="adaptive", executor="serial")
        assert job.plan["executor"] == "serial"

    def test_fixed_schedule_keeps_flat_default(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        job = execute(measured_bell(), "stabilizer", shots=8, seed=1,
                      schedule="fixed")
        assert job.plan["executor"] == "thread"

    def test_mixed_batch_routes_per_job(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        jobs = execute(
            [measured_bell(), measured_bell()],
            [get_backend("stabilizer"), get_backend("statevector")],
            shots=8, seed=1, schedule="adaptive",
        )
        assert jobs[0].plan["executor"] == "process"
        assert jobs[1].plan["executor"] == "thread"

    def test_schedule_env_default(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        monkeypatch.setenv(SCHEDULE_ENV_VAR, "fixed")
        job = execute(measured_bell(), "stabilizer", shots=8, seed=1)
        assert job.plan["schedule"] == "fixed"
        assert job.plan["executor"] == "thread"

    def test_bad_schedule_rejected(self):
        with pytest.raises(JobError, match="schedule"):
            execute(measured_bell(), "statevector", shots=8, schedule="psychic")

    def test_bad_schedule_env_rejected(self, monkeypatch):
        monkeypatch.setenv(SCHEDULE_ENV_VAR, "psychic")
        with pytest.raises(JobError, match="REPRO_SCHEDULE"):
            execute(measured_bell(), "statevector", shots=8)


# ----------------------------------------------------------------------
# Adaptive chunk planning
# ----------------------------------------------------------------------


class TestPlanChunkShots:
    def test_exact_backend_never_chunks(self):
        model = CostModel()
        model.observe_run(profile_key(get_backend("statevector"), measured_bell()),
                          shots=10, elapsed=100.0)
        assert plan_chunk_shots(
            get_backend("statevector"), measured_bell(), 100000, width=8,
            cost_model=model,
        ) is None

    def test_single_worker_never_chunks(self):
        assert plan_chunk_shots(
            get_backend("stabilizer"), measured_bell(), 100000, width=1,
            cost_model=CostModel(),
        ) is None

    def test_small_jobs_never_chunk(self):
        assert plan_chunk_shots(
            get_backend("stabilizer"), measured_bell(), MIN_CHUNK_SHOTS, width=8,
            cost_model=CostModel(),
        ) is None

    def test_cold_model_saturates_pool(self):
        chunk = plan_chunk_shots(
            get_backend("stabilizer"), measured_bell(), 1000, width=4,
            cost_model=CostModel(),
        )
        assert chunk == 250  # one chunk per worker

    def test_warm_model_targets_chunk_seconds(self):
        backend = get_backend("stabilizer")
        model = CostModel()
        model.observe_run(profile_key(backend, measured_bell()), 1000, 1.0)
        chunk = plan_chunk_shots(backend, measured_bell(), 1000, width=4,
                                 cost_model=model)
        # 1 s of work cut into 0.2 s targets -> 5 chunks of 200.
        assert chunk == 200

    def test_cheap_jobs_stay_whole(self):
        backend = get_backend("stabilizer")
        model = CostModel()
        model.observe_run(profile_key(backend, measured_bell()), 100000, 0.1)
        assert plan_chunk_shots(backend, measured_bell(), 1000, width=4,
                                cost_model=model) is None

    def test_oversubscription_bound(self):
        backend = get_backend("stabilizer")
        model = CostModel()
        model.observe_run(profile_key(backend, measured_bell()), 10, 10.0)
        width = 4
        chunk = plan_chunk_shots(backend, measured_bell(), 10000, width=width,
                                 cost_model=model)
        import math

        assert math.ceil(10000 / chunk) <= width * OVERSUBSCRIBE

    def test_min_chunk_floor(self):
        backend = get_backend("stabilizer")
        model = CostModel()
        model.observe_run(profile_key(backend, measured_bell()), 10, 10.0)
        chunk = plan_chunk_shots(backend, measured_bell(), 40, width=4,
                                 cost_model=model)
        assert chunk >= MIN_CHUNK_SHOTS

    def test_plan_is_deterministic(self):
        backend = get_backend("stabilizer")
        model = CostModel()
        model.observe_run(profile_key(backend, measured_bell()), 1000, 1.0)
        plans = {
            plan_chunk_shots(backend, measured_bell(), 1000, width=4,
                             cost_model=model)
            for _ in range(5)
        }
        assert len(plans) == 1


class TestAdaptiveChunkingInExecute:
    def _warmed_key(self, backend, circuit, per_shot=0.5):
        """Teach the default model a heavy per-shot cost for this key."""
        key = profile_key(backend, circuit)
        DEFAULT_COST_MODEL.observe_run(key, 100, per_shot * 100)
        return key

    def test_unseeded_per_shot_job_is_chunked(self):
        backend = get_backend("stabilizer")
        circuit = measured_ghz(6)
        self._warmed_key(backend, circuit)
        job = execute(circuit, backend, shots=320, executor="serial",
                      max_workers=4, schedule="adaptive")
        assert job.plan["chunk_shots"] is not None
        assert len(job._futures) > 1
        assert job.result().counts.shots == 320

    def test_seeded_job_keeps_fixed_plan(self):
        backend = get_backend("stabilizer")
        circuit = measured_ghz(6)
        self._warmed_key(backend, circuit)
        adaptive = execute(circuit, backend, shots=320, seed=11,
                           executor="serial", max_workers=4,
                           schedule="adaptive")
        fixed = execute(circuit, backend, shots=320, seed=11,
                        executor="serial", max_workers=4, schedule="fixed")
        assert adaptive.plan["chunk_shots"] is None
        assert len(adaptive._futures) == 1
        assert dict(adaptive.counts()) == dict(fixed.counts())

    def test_auto_opt_in_matches_explicit_fixed_chunking(self):
        backend = get_backend("stabilizer")
        circuit = measured_ghz(6)
        self._warmed_key(backend, circuit)
        auto = execute(circuit, backend, shots=320, seed=11,
                       chunk_shots="auto", executor="serial", max_workers=4,
                       schedule="adaptive")
        resolved = auto.plan["chunk_shots"]
        assert resolved is not None and resolved < 320
        fixed = execute(circuit, backend, shots=320, seed=11,
                        chunk_shots=resolved, executor="serial",
                        max_workers=4, schedule="fixed")
        assert dict(auto.counts()) == dict(fixed.counts())

    def test_auto_requires_adaptive(self):
        with pytest.raises(JobError, match="auto"):
            execute(measured_bell(), "stabilizer", shots=64,
                    chunk_shots="auto", schedule="fixed")

    def test_bogus_chunk_string_rejected(self):
        with pytest.raises(JobError, match="chunk_shots"):
            execute(measured_bell(), "stabilizer", shots=64,
                    chunk_shots="huge")

    def test_explicit_chunk_shots_always_wins(self):
        backend = get_backend("stabilizer")
        circuit = measured_ghz(6)
        self._warmed_key(backend, circuit)
        job = execute(circuit, backend, shots=320, chunk_shots=320,
                      executor="serial", max_workers=4, schedule="adaptive")
        assert job.plan["chunk_shots"] == 320
        assert len(job._futures) == 1


# ----------------------------------------------------------------------
# Parent-side prepare before process fan-out
# ----------------------------------------------------------------------


class CountingTranspileCache(TranspileCache):
    """A TranspileCache that appends one byte to a file per actual lowering.

    The file is shared across processes, so worker-side transpiles are
    counted too — which is the whole point of the regression test below.
    """

    def __init__(self, count_file, maxsize: int = 1024) -> None:
        super().__init__(maxsize=maxsize)
        self.count_file = str(count_file)

    def transpile(self, circuit, device, layout=None, optimize=True):
        key = transpile_key(circuit, device, layout, optimize)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        with open(self.count_file, "ab") as handle:
            handle.write(b"x")
        from repro.transpiler.passes import transpile_for_device

        lowered = transpile_for_device(
            circuit, device, layout=layout, optimize=optimize
        )
        self.store(key, lowered)
        return lowered


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="counting cache crosses the process boundary by reference",
)


class TestParentSidePrepare:
    @needs_fork
    def test_process_fanout_transpiles_exactly_once(self, tmp_path):
        """ROADMAP satellite: explicit-cache backends must not re-transpile
        per chunk task under executor="process" — the parent lowers once
        and ships the prepared circuit."""
        counter = tmp_path / "transpiles"
        counter.touch()
        cache = CountingTranspileCache(counter)
        backend = NoisyDeviceBackend(ibmqx4(), cache=cache)
        circuit = measured_bell()
        job = execute(circuit, backend, shots=256, seed=3, chunk_shots=64,
                      executor="process")
        pooled = dict(job.counts())
        assert counter.read_bytes() == b"x"  # one lowering, parent-side
        reference = execute(
            circuit, NoisyDeviceBackend(ibmqx4(), cache=False), shots=256,
            seed=3, chunk_shots=64, executor="serial",
        )
        assert pooled == dict(reference.counts())

    @needs_fork
    def test_thread_fanout_still_counts_one(self, tmp_path):
        """Thread pools share the cache, so one lowering there too."""
        counter = tmp_path / "transpiles"
        counter.touch()
        backend = NoisyDeviceBackend(ibmqx4(), cache=CountingTranspileCache(counter))
        execute(measured_bell(), backend, shots=256, seed=3, chunk_shots=64,
                executor="thread").result()
        assert counter.read_bytes() == b"x"

    def test_prepare_failure_surfaces_at_collection(self):
        """A circuit too big for the device keeps failing through the job
        future (collection-time JobError), not at submit time."""
        backend = NoisyDeviceBackend(ibmqx4())  # 5-qubit device
        job = execute(measured_ghz(6), backend, shots=32, seed=1,
                      executor="process")
        with pytest.raises(JobError, match="failed"):
            job.result()

    def test_transpile_disabled_backend_untouched(self):
        """transpile=False backends ship as-is (nothing to prepare)."""
        backend = NoisyDeviceBackend(ibmqx4(), transpile=False)
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        job = execute(circuit, backend, shots=64, seed=5, executor="process")
        serial = execute(circuit, backend, shots=64, seed=5, executor="serial")
        assert dict(job.counts()) == dict(serial.counts())


# ----------------------------------------------------------------------
# Batch-axis engine awareness and prepare-first dispatch
# ----------------------------------------------------------------------


class TestVectorizedBackendAwareness:
    """The runtime's view of the batched trajectory engine (PR 5)."""

    def test_batched_trajectory_routes_to_threads(self):
        batched = get_backend("trajectory:ibmqx4")
        looped = get_backend("trajectory:ibmqx4", method="loop")
        # Still per-shot (no exact distribution) ...
        assert is_per_shot_backend(batched)
        assert is_per_shot_backend(looped)
        # ... but the batch-axis kernels release the GIL, so threads win.
        assert executor_kind_for(batched) == "thread"
        assert executor_kind_for(looped) == "process"

    def test_cost_model_keys_methods_apart(self):
        circuit = measured_bell()
        batched_key = profile_key(get_backend("trajectory:ibmqx4"), circuit)
        looped_key = profile_key(
            get_backend("trajectory:ibmqx4", method="loop"), circuit
        )
        assert batched_key == ("trajectory(ibmqx4)+batched", 2)
        assert looped_key == ("trajectory(ibmqx4)+loop", 2)

    def test_prepare_key_shared_across_methods(self):
        """Transpile cost is method-independent: one per_prepare EWMA."""
        circuit = measured_bell()
        batched = get_backend("trajectory:ibmqx4")
        looped = get_backend("trajectory:ibmqx4", method="loop")
        assert (
            prepare_profile_key(batched, circuit)
            == prepare_profile_key(looped, circuit)
            == ("trajectory(ibmqx4)", 2)
        )

    def test_vectorized_chunks_are_fatter(self):
        circuit = measured_bell()
        batched = get_backend("trajectory:ibmqx4")
        looped = get_backend("trajectory:ibmqx4", method="loop")
        model = CostModel()
        model.observe_run(profile_key(batched, circuit), 1000, 1.0)
        model.observe_run(profile_key(looped, circuit), 1000, 1.0)
        fat = plan_chunk_shots(batched, circuit, 20000, width=4, cost_model=model)
        thin = plan_chunk_shots(looped, circuit, 20000, width=4, cost_model=model)
        assert thin is not None and fat is not None
        assert fat > thin  # same measured cost, fewer/fatter batched chunks


class TranspilingRecordingBackend(Backend):
    """Records run order and looks like a transpiling device backend."""

    name = "transpiling-recorder"
    transpile = True

    def __init__(self, log):
        self.log = log

    def prepare(self, circuit):
        return circuit

    def run(self, circuit, shots=1024, seed=None):
        self.log.append(circuit.name)
        return Result(counts=Counts({"0": shots}), shots=shots)


class TestPrepareAwareDispatch:
    """ROADMAP follow-up: transpile-heavy jobs are submitted first."""

    def _circuits(self):
        cheap = QuantumCircuit(1, name="cheap")
        cheap.measure_all()
        heavy = QuantumCircuit(6, name="heavy")
        heavy.measure_all()
        return cheap, heavy

    def test_adaptive_submits_transpile_heavy_first(self):
        log = []
        backend = TranspilingRecordingBackend(log)
        cheap, heavy = self._circuits()
        DEFAULT_COST_MODEL.observe_prepare(profile_key(backend, heavy), 5.0)
        execute([cheap, heavy], backend, shots=8, seed=1, executor="serial",
                schedule="adaptive", dedupe=False).result()
        assert log == ["heavy", "cheap"]

    def test_fixed_schedule_keeps_submission_order(self):
        log = []
        backend = TranspilingRecordingBackend(log)
        cheap, heavy = self._circuits()
        DEFAULT_COST_MODEL.observe_prepare(profile_key(backend, heavy), 5.0)
        execute([cheap, heavy], backend, shots=8, seed=1, executor="serial",
                schedule="fixed", dedupe=False).result()
        assert log == ["cheap", "heavy"]

    def test_priority_still_wins_over_prepare_estimate(self):
        log = []
        backend = TranspilingRecordingBackend(log)
        cheap, heavy = self._circuits()
        DEFAULT_COST_MODEL.observe_prepare(profile_key(backend, heavy), 5.0)
        execute([cheap, heavy], backend, shots=8, seed=1, executor="serial",
                schedule="adaptive", dedupe=False, priority=[1, 0]).result()
        assert log == ["cheap", "heavy"]


# ----------------------------------------------------------------------
# Fair-share multi-client scheduler
# ----------------------------------------------------------------------


class RecordingBackend(Backend):
    """Logs every run()'s circuit name; optionally gates on an event."""

    name = "recorder"

    def __init__(self, log, gate=None):
        self.log = log
        self.gate = gate

    def run(self, circuit, shots=1024, seed=None):
        if self.gate is not None:
            assert self.gate.wait(30), "gate never released"
        self.log.append(circuit.name)
        return Result(counts=Counts({"0": shots}), shots=shots)


def named_circuit(name):
    circuit = QuantumCircuit(1, name=name)
    circuit.measure_all()
    return circuit


def wait_for_dispatches(scheduler, count, timeout=10.0):
    """Block until the scheduler has dispatched ``count`` batches.

    The dispatch counter increments *before* the dispatcher enters
    execute(), so this observably pins "the blocker batch now occupies the
    serial dispatcher" even while its gated simulation is still blocked.
    """
    deadline = time.monotonic() + timeout
    while scheduler.stats()["dispatched_batches"] < count:
        assert time.monotonic() < deadline, "dispatcher never picked up work"
        time.sleep(0.002)


class TestSchedulerFairShare:
    def test_weighted_round_robin_order(self):
        """Weights steer dispatch: each round grants `weight` slots."""
        log = []
        gate = threading.Event()
        blocker_backend = RecordingBackend(log, gate=gate)
        backend = RecordingBackend(log)
        with Scheduler(max_in_flight=1, executor="serial") as scheduler:
            scheduler.client("a", weight=1)
            scheduler.client("b", weight=3)
            # The blocker holds the (serial) dispatcher so every batch
            # below is queued before the round-robin starts.
            scheduler.submit(named_circuit("blocker"), blocker_backend,
                             shots=1, client="z")
            wait_for_dispatches(scheduler, 1)
            for i in range(4):
                scheduler.submit(named_circuit(f"a{i}"), backend, shots=1,
                                 client="a")
            for i in range(4):
                scheduler.submit(named_circuit(f"b{i}"), backend, shots=1,
                                 client="b")
            gate.set()
            assert scheduler.wait_idle(timeout=30)
        assert log == [
            "blocker",
            "a0", "b0", "b1", "b2",  # round one: 1 + 3 slots
            "a1", "b3",              # round two: b drained mid-round
            "a2", "a3",
        ]

    def test_priority_orders_within_client(self):
        log = []
        gate = threading.Event()
        with Scheduler(max_in_flight=1, executor="serial") as scheduler:
            scheduler.submit(named_circuit("blocker"),
                             RecordingBackend(log, gate=gate), shots=1,
                             client="z")
            wait_for_dispatches(scheduler, 1)
            backend = RecordingBackend(log)
            scheduler.submit(named_circuit("low"), backend, shots=1,
                             client="a", priority=0)
            scheduler.submit(named_circuit("high"), backend, shots=1,
                             client="a", priority=5)
            scheduler.submit(named_circuit("low2"), backend, shots=1,
                             client="a", priority=0)
            gate.set()
            assert scheduler.wait_idle(timeout=30)
        assert log == ["blocker", "high", "low", "low2"]

    def test_admission_control_bounds_in_flight_jobs(self):
        gate = threading.Event()
        backend = RecordingBackend([], gate=gate)
        scheduler = Scheduler(max_in_flight=2, executor="thread", max_workers=2)
        try:
            first = scheduler.submit(
                [named_circuit("g0"), named_circuit("g1")], backend, shots=1,
                client="a", dedupe=False,
            )
            second = scheduler.submit(named_circuit("g2"), backend, shots=1,
                                      client="a")
            deadline = time.monotonic() + 10
            while not first.dispatched and time.monotonic() < deadline:
                time.sleep(0.005)
            assert first.dispatched
            time.sleep(0.05)  # give the dispatcher a chance to over-admit
            stats = scheduler.stats()
            assert stats["in_flight_jobs"] == 2
            assert stats["queued_batches"] == 1
            assert second.status() == "queued"
            gate.set()
            assert scheduler.wait_idle(timeout=30)
            assert second.status() == "done"
        finally:
            gate.set()
            scheduler.shutdown()

    def test_oversized_batch_admitted_alone(self):
        with Scheduler(max_in_flight=1, executor="serial") as scheduler:
            batch = scheduler.submit(
                [named_circuit(f"c{i}") for i in range(3)],
                RecordingBackend([]), shots=4, client="big", dedupe=False,
            )
            results = batch.result(timeout=30)
        assert len(results) == 3

    def test_failed_dispatch_marks_batch_and_keeps_serving(self):
        with Scheduler(executor="serial") as scheduler:
            bad = scheduler.submit(named_circuit("bad"), "statevector",
                                   shots=-5, client="a")
            good = scheduler.submit(named_circuit("good"), "statevector",
                                    shots=16, seed=1, client="a")
            with pytest.raises(JobError, match="failed to dispatch"):
                bad.result(timeout=30)
            assert bad.status() == "failed"
            assert len(good.result(timeout=30)) == 1
            assert scheduler.wait_idle(timeout=10)
            stats = scheduler.stats()["clients"]["a"]
        # Failed jobs count as settled: submitted vs completed reconciles.
        assert stats["failed_batches"] == 1
        assert stats["completed_batches"] == 2
        assert stats["completed_jobs"] == stats["submitted_jobs"] == 2

    def test_result_timeout_is_one_shared_deadline(self):
        """A dispatched-but-stuck batch must time out in about `timeout`
        seconds, not dispatch-wait plus collection-wait."""
        gate = threading.Event()
        backend = RecordingBackend([], gate=gate)
        scheduler = Scheduler(executor="thread", max_workers=1)
        try:
            batch = scheduler.submit(named_circuit("stuck"), backend, shots=1)
            start = time.monotonic()
            with pytest.raises(JobError):
                batch.result(timeout=0.4)
            assert time.monotonic() - start < 5.0
        finally:
            gate.set()
            scheduler.shutdown()

    def test_counts_identical_to_direct_execute(self):
        circuit = measured_bell()
        direct = execute(circuit, "statevector", shots=512, seed=9,
                         executor="serial").counts()
        with Scheduler(executor="serial") as scheduler:
            batch = scheduler.submit(circuit, "statevector", shots=512,
                                     seed=9, client="a")
            scheduled = batch.counts(timeout=30)
        assert [dict(scheduled[0])] == [dict(direct)]

    def test_submit_after_shutdown_raises(self):
        scheduler = Scheduler(executor="serial")
        scheduler.shutdown()
        with pytest.raises(JobError, match="shut down"):
            scheduler.submit(named_circuit("late"), "statevector", shots=4)

    def test_shutdown_without_wait_fails_queued_batches(self):
        gate = threading.Event()
        log = []
        scheduler = Scheduler(max_in_flight=1, executor="serial")
        scheduler.submit(named_circuit("blocker"),
                         RecordingBackend(log, gate=gate), shots=1, client="z")
        wait_for_dispatches(scheduler, 1)  # the blocker owns the dispatcher
        queued = scheduler.submit(named_circuit("never"),
                                  RecordingBackend(log), shots=1, client="a")
        # shutdown() fails the queued batch immediately, then joins the
        # dispatcher — which needs the gate released to finish the blocker.
        stopper = threading.Thread(
            target=scheduler.shutdown, kwargs={"wait": False}
        )
        stopper.start()
        with pytest.raises(JobError):
            queued.jobs(timeout=10)
        assert queued.status() == "failed"
        gate.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        assert log == ["blocker"]

    def test_stats_shape(self):
        with Scheduler(executor="serial") as scheduler:
            scheduler.client("a", weight=2)
            batch = scheduler.submit(named_circuit("c"), "statevector",
                                     shots=8, seed=1, client="a")
            batch.result(timeout=30)
            assert scheduler.wait_idle(timeout=10)
            stats = scheduler.stats()
        assert stats["clients"]["a"]["weight"] == 2
        assert stats["clients"]["a"]["submitted_batches"] == 1
        assert stats["clients"]["a"]["completed_batches"] == 1
        assert stats["clients"]["a"]["completed_jobs"] == 1
        assert stats["dispatched_batches"] == 1
        assert stats["in_flight_jobs"] == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(JobError, match="max_in_flight"):
            Scheduler(max_in_flight=0)
        scheduler = Scheduler(executor="serial")
        try:
            with pytest.raises(JobError, match="weight"):
                scheduler.client("a", weight=0)
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Queue policies: validation, timeouts, deadlines, preemption, width
# ----------------------------------------------------------------------


class TestSubmitValidation:
    def test_bad_client_names_rejected(self):
        with Scheduler(executor="serial") as scheduler:
            with pytest.raises(ValueError, match="non-empty string"):
                scheduler.submit(named_circuit("c"), "statevector", client="")
            with pytest.raises(ValueError, match="non-empty string"):
                scheduler.submit(named_circuit("c"), "statevector", client=7)

    @pytest.mark.parametrize("priority", [-1, -100, 1.5, "high", True, None])
    def test_bad_priorities_rejected(self, priority):
        with Scheduler(executor="serial") as scheduler:
            with pytest.raises(ValueError, match="priority"):
                scheduler.submit(named_circuit("c"), "statevector",
                                 priority=priority)

    def test_bad_deadlines_rejected(self):
        with Scheduler(executor="serial") as scheduler:
            with pytest.raises(ValueError, match="deadline must be positive"):
                scheduler.submit(named_circuit("c"), "statevector", deadline=0)
            with pytest.raises(ValueError, match="deadline_action"):
                scheduler.submit(named_circuit("c"), "statevector",
                                 deadline=1.0, deadline_action="explode")

    def test_unregistered_client_rejected_when_registration_required(self):
        with Scheduler(executor="serial",
                       require_registration=True) as scheduler:
            scheduler.client("alice")
            with pytest.raises(ValueError, match="not registered"):
                scheduler.submit(named_circuit("c"), "statevector",
                                 client="mallory")
            # The error names who *is* registered, to aid fixing the call.
            with pytest.raises(ValueError, match="alice"):
                scheduler.submit(named_circuit("c"), "statevector",
                                 client="mallory")
            batch = scheduler.submit(named_circuit("c"), "statevector",
                                     shots=8, seed=1, client="alice")
            batch.result(timeout=30)

    def test_auto_registration_still_default(self):
        with Scheduler(executor="serial") as scheduler:
            batch = scheduler.submit(named_circuit("c"), "statevector",
                                     shots=8, seed=1, client="newcomer")
            batch.result(timeout=30)


class TestQueueTimeoutSemantics:
    def test_timeout_while_queued_raises_queue_timeout_with_position(self):
        gate = threading.Event()
        try:
            with Scheduler(max_in_flight=1, executor="thread") as scheduler:
                blocker = scheduler.submit(
                    named_circuit("blocker"), RecordingBackend([], gate=gate),
                    shots=4,
                )
                blocker.jobs(timeout=10)  # pinned in flight, gated
                first = scheduler.submit(named_circuit("first"),
                                         RecordingBackend([]), shots=4)
                second = scheduler.submit(named_circuit("second"),
                                          RecordingBackend([]), shots=4)
                with pytest.raises(QueueTimeout) as excinfo:
                    second.result(timeout=0.05)
                error = excinfo.value
                assert isinstance(error, JobError)  # old handlers still catch
                assert error.client == "default"
                assert error.waited >= 0.05
                assert error.queue_position == 1  # behind `first`
                assert error.queued_batches == 2
                assert "position 2 of 2" in str(error)
                with pytest.raises(QueueTimeout) as excinfo:
                    first.counts(timeout=0.05)
                assert excinfo.value.queue_position == 0
                gate.set()
                assert first.counts(timeout=30)
        finally:
            gate.set()

    def test_timeout_after_dispatch_is_not_a_queue_timeout(self):
        gate = threading.Event()
        try:
            with Scheduler(max_in_flight=1, executor="thread") as scheduler:
                batch = scheduler.submit(
                    named_circuit("slow"), RecordingBackend([], gate=gate),
                    shots=4,
                )
                batch.jobs(timeout=10)
                with pytest.raises(JobError) as excinfo:
                    batch.result(timeout=0.05)
                assert not isinstance(excinfo.value, QueueTimeout)
                gate.set()
                batch.result(timeout=30)
        finally:
            gate.set()


class TestDeadlines:
    def test_deadline_drop_retires_queued_batch(self):
        gate = threading.Event()
        try:
            with Scheduler(max_in_flight=1, executor="thread") as scheduler:
                log = []
                blocker = scheduler.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                blocker.jobs(timeout=10)
                doomed = scheduler.submit(
                    named_circuit("doomed"), RecordingBackend(log), shots=4,
                    deadline=0.05,
                )
                deadline = time.monotonic() + 10
                while doomed.status() != "dropped":
                    assert time.monotonic() < deadline, "never dropped"
                    time.sleep(0.005)
                assert doomed.done()
                with pytest.raises(QueueTimeout, match="deadline"):
                    doomed.result(timeout=1)
                gate.set()
                blocker.result(timeout=30)
                assert scheduler.wait_idle(timeout=10)
                stats = scheduler.stats()["clients"]["default"]
                assert stats["dropped_batches"] == 1
                assert "doomed" not in log  # dropped work never runs
        finally:
            gate.set()

    def test_deadline_reprioritize_boosts_ahead_of_high_priority(self):
        gate = threading.Event()
        log = []
        try:
            with Scheduler(max_in_flight=1, executor="thread") as scheduler:
                blocker = scheduler.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                blocker.jobs(timeout=10)
                important = scheduler.submit(
                    named_circuit("important"), RecordingBackend(log),
                    shots=4, priority=9,
                )
                boosted = scheduler.submit(
                    named_circuit("boosted"), RecordingBackend(log), shots=4,
                    priority=0, deadline=0.05,
                    deadline_action="reprioritize",
                )
                time.sleep(0.2)  # deadline expires while still queued
                gate.set()
                important.result(timeout=30)
                boosted.result(timeout=30)
                assert log.index("boosted") < log.index("important")
                stats = scheduler.stats()["clients"]["default"]
                assert stats["reprioritized_batches"] == 1
                assert stats["dropped_batches"] == 0
        finally:
            gate.set()


class TestPreemption:
    def test_long_waiting_batch_is_boosted(self):
        """preempt_after boosts a starved batch ahead of later
        high-priority arrivals (aging beats priority eventually)."""
        gate = threading.Event()
        log = []
        try:
            with Scheduler(max_in_flight=1, executor="thread",
                           preempt_after=0.05) as scheduler:
                blocker = scheduler.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                blocker.jobs(timeout=10)
                starved = scheduler.submit(
                    named_circuit("starved"), RecordingBackend(log), shots=4,
                    priority=0,
                )
                time.sleep(0.15)  # starved ages past preempt_after
                jumper = scheduler.submit(
                    named_circuit("jumper"), RecordingBackend(log), shots=4,
                    priority=9,
                )
                gate.set()
                starved.result(timeout=30)
                jumper.result(timeout=30)
                assert log.index("starved") < log.index("jumper")
                stats = scheduler.stats()["clients"]["default"]
                assert stats["preempted_batches"] >= 1
        finally:
            gate.set()

    def test_invalid_preempt_after_rejected(self):
        with pytest.raises(JobError, match="preempt_after"):
            Scheduler(preempt_after=0)


class TestCancelQueued:
    def test_cancel_dequeues_and_settles(self):
        gate = threading.Event()
        log = []
        try:
            with Scheduler(max_in_flight=1, executor="thread") as scheduler:
                blocker = scheduler.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                blocker.jobs(timeout=10)
                doomed = scheduler.submit(named_circuit("doomed"),
                                          RecordingBackend(log), shots=4)
                assert doomed.cancel()
                assert doomed.status() == "cancelled"
                assert doomed.done()
                with pytest.raises(JobError, match="cancelled"):
                    doomed.result(timeout=1)
                gate.set()
                blocker.result(timeout=30)
                assert scheduler.wait_idle(timeout=10)
                assert "doomed" not in log
                stats = scheduler.stats()["clients"]["default"]
                assert stats["cancelled_batches"] == 1
        finally:
            gate.set()


class TestWidthPlanner:
    def test_no_data_means_no_opinion(self):
        from repro.runtime import plan_width

        model = CostModel()
        assert plan_width(get_backend("statevector"),
                          [measured_bell()], 1024,
                          max_width=8, cost_model=model) is None

    def test_width_scales_with_estimated_cost(self):
        from repro.runtime import plan_width
        from repro.runtime.scheduler import TARGET_CHUNK_SECONDS

        backend = get_backend("statevector")
        circuit = measured_bell()
        model = CostModel()
        key = profile_key(backend, circuit)
        # Train: 1 ms per shot -> 1024 shots ~ 1.024 s of estimated work.
        model.observe_run(key, shots=100, elapsed=0.1)
        width = plan_width(backend, [circuit], 1024, max_width=64,
                           cost_model=model)
        expected = math.ceil(1024 * 0.001 / TARGET_CHUNK_SECONDS)
        assert width == expected
        # Tiny batches take one worker; huge ones clamp to the cap.
        assert plan_width(backend, [circuit], 16, max_width=64,
                          cost_model=model) == 1
        assert plan_width(backend, [circuit] * 100, 100000, max_width=8,
                          cost_model=model) == 8

    def test_single_worker_cap_means_no_opinion(self):
        from repro.runtime import plan_width

        assert plan_width(get_backend("statevector"), [measured_bell()],
                          1024, max_width=1) is None

    def test_unknown_backend_spec_means_no_opinion(self):
        from repro.runtime import plan_width

        assert plan_width("no-such-backend", [measured_bell()], 1024,
                          max_width=8) is None

    def test_scheduler_records_planned_width(self, monkeypatch):
        # The planner defers to the machine width; pin it so the test is
        # meaningful on single-core runners too.
        import repro.runtime.scheduler as scheduler_module

        monkeypatch.setattr(scheduler_module, "default_max_workers",
                            lambda: 8)
        backend = get_backend("statevector")
        circuit = measured_bell()
        model = CostModel()
        model.observe_run(profile_key(backend, circuit), shots=100, elapsed=0.1)
        with Scheduler(executor="thread", width_planning=True,
                       cost_model=model) as scheduler:
            batch = scheduler.submit(circuit, backend, shots=1024, seed=3)
            batch.result(timeout=30)
            assert batch.planned_width is not None
            assert batch.planned_width >= 1

    def test_width_planning_never_changes_counts(self):
        circuit = measured_bell()
        reference = execute(circuit, "statevector", shots=256,
                            seed=5).result().counts
        model = CostModel()
        model.observe_run(profile_key(get_backend("statevector"), circuit),
                          shots=100, elapsed=0.1)
        with Scheduler(executor="thread", width_planning=True,
                       cost_model=model) as scheduler:
            batch = scheduler.submit(circuit, "statevector", shots=256, seed=5)
            assert batch.counts(timeout=30)[0] == reference


class TestSchedulerQueueStats:
    def test_queue_wait_samples_exposed(self):
        with Scheduler(executor="serial") as scheduler:
            batch = scheduler.submit(named_circuit("c"), "statevector",
                                     shots=8, seed=1)
            batch.result(timeout=30)
            assert scheduler.wait_idle(timeout=10)
            stats = scheduler.stats()
        assert stats["queue_wait_samples"] == 1
        assert stats["queue_wait_mean_s"] >= 0.0
