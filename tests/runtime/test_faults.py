"""Tests for :mod:`repro.faults` — the deterministic fault-injection harness."""

import json

import pytest

from repro import faults
from repro.exceptions import FaultInjected
from repro.faults import ENV_VAR, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    """Every test starts (and ends) with no ambient plan."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.deactivate()
    yield
    faults.deactivate()


class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule()
        assert rule.rate == 1.0
        assert rule.times is None
        assert rule.after == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule(rate=-0.1)
        with pytest.raises(ValueError, match="times"):
            FaultRule(times=-1)
        with pytest.raises(ValueError, match="after"):
            FaultRule(after=-1)

    def test_coerce_number_is_rate_shorthand(self):
        assert FaultRule.coerce(0.25).rate == 0.25
        assert FaultRule.coerce(1).rate == 1.0

    def test_coerce_dict_and_passthrough(self):
        rule = FaultRule.coerce({"rate": 0.5, "times": 2, "after": 1})
        assert (rule.rate, rule.times, rule.after) == (0.5, 2, 1)
        assert FaultRule.coerce(rule) is rule

    def test_coerce_rejects_unknown_fields_and_types(self):
        with pytest.raises(ValueError, match="unknown FaultRule fields"):
            FaultRule.coerce({"rate": 0.5, "probability": 0.5})
        with pytest.raises(TypeError):
            FaultRule.coerce("0.5")
        with pytest.raises(TypeError):
            FaultRule.coerce(True)


class TestFaultPlanDecisions:
    def test_unlisted_site_never_fires(self):
        plan = FaultPlan(seed=1, sites={"chunk.simulate": 1.0})
        assert not plan.should_fire("journal.write")

    def test_rate_one_always_fires_rate_zero_never(self):
        plan = FaultPlan(seed=1, sites={"a": 1.0, "b": 0.0})
        assert all(plan.should_fire("a", key=i) for i in range(20))
        assert not any(plan.should_fire("b", key=i) for i in range(20))

    def test_keyed_decisions_are_reproducible_across_instances(self):
        spec = {"seed": 7, "sites": {"chunk.simulate": 0.5}}
        keys = [(11, chunk, attempt) for chunk in range(8)
                for attempt in range(3)]
        first = [FaultPlan.from_spec(spec).should_fire("chunk.simulate", key=k)
                 for k in keys]
        second = [FaultPlan.from_spec(spec).should_fire("chunk.simulate", key=k)
                  for k in keys]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 actually splits

    def test_different_seeds_differ(self):
        keys = list(range(64))
        verdict = lambda seed: [
            FaultPlan(seed=seed, sites={"s": 0.5}).should_fire("s", key=k)
            for k in keys
        ]
        assert verdict(1) != verdict(2)

    def test_counter_keyed_when_no_key(self):
        # Without explicit keys, the per-site decision counter is the key:
        # deterministic within a process for a fixed decision order.
        outcomes = lambda: [
            FaultPlan(seed=5, sites={"s": 0.5}).should_fire("s")
            for _ in range(1)
        ]
        plan = FaultPlan(seed=5, sites={"s": 0.5})
        seq = [plan.should_fire("s") for _ in range(32)]
        replay = FaultPlan(seed=5, sites={"s": 0.5})
        assert seq == [replay.should_fire("s") for _ in range(32)]
        assert outcomes() == outcomes()

    def test_times_caps_total_fires(self):
        plan = FaultPlan(seed=1, sites={"s": {"rate": 1.0, "times": 2}})
        fired = [plan.should_fire("s", key=i) for i in range(10)]
        assert sum(fired) == 2
        assert fired[:2] == [True, True]

    def test_after_skips_initial_decisions(self):
        plan = FaultPlan(seed=1, sites={"s": {"rate": 1.0, "after": 3}})
        fired = [plan.should_fire("s", key=i) for i in range(6)]
        assert fired == [False, False, False, True, True, True]

    def test_stats_tallies(self):
        plan = FaultPlan(seed=1, sites={"s": {"rate": 1.0, "times": 1}})
        for i in range(4):
            plan.should_fire("s", key=i)
        plan.should_fire("other")
        stats = plan.stats()
        assert stats["s"] == {"decisions": 4, "fired": 1}
        assert stats["other"] == {"decisions": 1, "fired": 0}


class TestFaultPlanSpecs:
    def test_from_spec_dict_json_and_passthrough(self):
        spec = {"seed": 3, "sites": {"chunk.simulate": 0.25}}
        from_dict = FaultPlan.from_spec(spec)
        from_json = FaultPlan.from_spec(json.dumps(spec))
        assert from_dict.seed == from_json.seed == 3
        assert from_dict.sites["chunk.simulate"].rate == 0.25
        assert FaultPlan.from_spec(from_dict) is from_dict

    def test_from_spec_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 9, "sites": {"pool.worker_crash": {"rate": 1.0,
                                                        "times": 1}}}
        ))
        plan = FaultPlan.from_spec(str(path))
        assert plan.seed == 9
        assert plan.sites["pool.worker_crash"].times == 1

    def test_from_spec_rejects_unknown_fields_and_types(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_spec({"seed": 1, "rules": {}})
        with pytest.raises(TypeError):
            FaultPlan.from_spec(["chunk.simulate"])

    def test_to_spec_round_trips(self):
        plan = FaultPlan(seed=4, sites={
            "chunk.simulate": {"rate": 0.5, "times": 3, "after": 2},
            "journal.write": 1.0,
        })
        clone = FaultPlan.from_spec(plan.to_spec())
        assert clone.seed == plan.seed
        assert clone.sites == plan.sites


class TestAmbientPlan:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None
        assert not faults.should_fail("chunk.simulate")
        faults.inject("chunk.simulate")  # no plan: no raise

    def test_activate_and_deactivate(self):
        plan = faults.activate({"seed": 1, "sites": {"journal.write": 1.0}})
        assert faults.active_plan() is plan
        assert faults.should_fail("journal.write")
        faults.deactivate()
        assert faults.active_plan() is None

    def test_env_var_plan_is_cached_per_value(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps(
            {"seed": 2, "sites": {"http.accept": 1.0}}
        ))
        plan = faults.active_plan()
        assert plan is faults.active_plan()  # cached: counters persist
        assert plan.sites["http.accept"].rate == 1.0
        monkeypatch.setenv(ENV_VAR, json.dumps({"seed": 3, "sites": {}}))
        assert faults.active_plan() is not plan
        assert faults.active_plan().seed == 3

    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps({"seed": 2, "sites": {}}))
        explicit = faults.activate({"seed": 9, "sites": {}})
        assert faults.active_plan() is explicit

    def test_injected_context_manager_restores_previous(self):
        outer = faults.activate({"seed": 1, "sites": {}})
        with faults.injected({"seed": 2, "sites": {"journal.write": 1.0}}) as plan:
            assert faults.active_plan() is plan
        assert faults.active_plan() is outer

    def test_inject_raises_typed_fault_with_site(self):
        with faults.injected({"seed": 1, "sites": {"journal.write": 1.0}}):
            with pytest.raises(FaultInjected, match="journal.write") as info:
                faults.inject("journal.write")
            assert info.value.site == "journal.write"
