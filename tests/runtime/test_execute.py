"""Tests for the execute() entry point and batch deduplication."""

import pytest

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.exceptions import JobError
from repro.runtime.batching import plan_batches
from repro.runtime.execute import execute, execute_and_collect
from repro.runtime.job import Job, JobSet
from repro.runtime.provider import get_backend


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


def measured_ghz(n=3):
    qc = library.ghz_state(n)
    qc.measure_all()
    return qc


class TestExecuteShapes:
    def test_single_circuit_returns_job(self):
        job = execute(measured_bell(), "statevector", shots=100, seed=1)
        assert isinstance(job, Job)

    def test_batch_returns_jobset_in_order(self):
        jobs = execute(
            [measured_bell(), measured_ghz()], "statevector", shots=100, seed=1
        )
        assert isinstance(jobs, JobSet)
        assert jobs[0].circuit.num_qubits == 2
        assert jobs[1].circuit.num_qubits == 3

    def test_backend_spec_string(self):
        job = execute(measured_bell(), "stabilizer", shots=100, seed=1)
        assert job.backend.name == "stabilizer"

    def test_per_circuit_backends(self):
        jobs = execute(
            [measured_bell(), measured_bell()],
            ["statevector", get_backend("stabilizer")],
            shots=100,
            seed=1,
        )
        assert jobs[0].backend.name == "statevector"
        assert jobs[1].backend.name == "stabilizer"

    def test_per_circuit_shots_and_seeds(self):
        jobs = execute(
            [measured_bell(), measured_bell()],
            "statevector",
            shots=[100, 200],
            seed=[1, 2],
            dedupe=False,
        )
        results = jobs.result()
        assert results[0].counts.shots == 100
        assert results[1].counts.shots == 200

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(JobError, match="shots list"):
            execute([measured_bell()], "statevector", shots=[100, 200])
        with pytest.raises(JobError, match="seed list"):
            execute([measured_bell()], "statevector", seed=[1, 2])
        with pytest.raises(JobError, match="backend list"):
            execute([measured_bell()], ["statevector", "stabilizer"])

    def test_invalid_workers_rejected(self):
        with pytest.raises(JobError, match="max_workers"):
            execute(measured_bell(), "statevector", max_workers=0)

    def test_invalid_shots_rejected_before_submission(self):
        """A bad batch entry must fail fast, before any job is submitted."""
        with pytest.raises(JobError, match="shots must be non-negative"):
            execute(
                [measured_bell(), measured_bell()],
                "statevector",
                shots=[1024, -5],
                seed=[1, 2],
            )

    def test_invalid_chunk_shots_rejected(self):
        with pytest.raises(JobError, match="chunk_shots"):
            execute(measured_bell(), "statevector", shots=100, chunk_shots=0)

    def test_execute_and_collect(self):
        result = execute_and_collect(measured_bell(), "statevector", shots=64, seed=9)
        assert result.counts.shots == 64


class TestBatchEquivalence:
    """execute() must reproduce the sequential backend.run loop exactly."""

    @pytest.mark.parametrize("spec", ["statevector", "density_matrix", "stabilizer"])
    def test_distinct_circuits_match_sequential_loop(self, spec):
        circuits = [measured_bell(), measured_ghz(3), measured_ghz(4)]
        backend = get_backend(spec)
        sequential = [backend.run(c, shots=512, seed=7) for c in circuits]
        batch = execute(circuits, backend, shots=512, seed=7, max_workers=3)
        for loop_result, job_result in zip(sequential, batch.result()):
            assert dict(loop_result.counts) == dict(job_result.counts)

    def test_noisy_sweep_batch_matches_sequential_loop(self, ibmqx4_device):
        """Acceptance: >= 8 sweep circuits, identical counts to the loop."""
        injected = []
        for mode in ("pairwise", "single"):
            injector = AssertionInjector(library.ghz_state(3))
            injector.assert_entangled([0, 1, 2], mode=mode)
            injector.measure_program()
            injected.append(injector.circuit)
        circuits = (injected + [measured_bell(), measured_ghz(3)]) * 2
        assert len(circuits) >= 8
        backend = get_backend("noisy:ibmqx4")
        sequential = [backend.run(c, shots=1024, seed=2020) for c in circuits]
        batch = execute(circuits, backend, shots=1024, seed=2020, max_workers=4)
        for loop_result, job_result in zip(sequential, batch.result()):
            assert dict(loop_result.counts) == dict(job_result.counts)


class TestDeduplication:
    def test_spec_string_backend_still_dedupes(self):
        """A scalar spec string must resolve to ONE backend instance."""
        jobs = execute([measured_bell()] * 4, "density_matrix", shots=64, seed=3)
        assert jobs.num_executed == 1
        assert len({id(job.backend) for job in jobs}) == 1

    def test_repeated_specs_in_backend_list_share_instances(self):
        jobs = execute(
            [measured_bell()] * 3,
            ["density_matrix", "density_matrix", "stabilizer"],
            shots=64,
            seed=3,
        )
        assert jobs[0].backend is jobs[1].backend
        assert jobs.num_executed == 2

    def test_share_runs_once(self):
        backend = get_backend("density_matrix")
        jobs = execute([measured_bell()] * 6, backend, shots=256, seed=3)
        results = jobs.result()
        assert jobs.num_executed == 1
        reference = dict(backend.run(measured_bell(), shots=256, seed=3).counts)
        for result in results:
            assert dict(result.counts) == reference

    def test_shared_results_are_independent_copies(self):
        jobs = execute([measured_bell()] * 2, "density_matrix", shots=256, seed=3)
        first, second = jobs.result()
        first.counts["00"] = 0
        assert second.counts != first.counts

    def test_resample_matches_dedicated_runs(self):
        backend = get_backend("density_matrix")
        seeds = [1, 2, 3, 4]
        jobs = execute([measured_bell()] * 4, backend, shots=512, seed=seeds)
        assert jobs.num_executed == 1
        for seed, result in zip(seeds, jobs.result()):
            dedicated = backend.run(measured_bell(), shots=512, seed=seed)
            assert dict(result.counts) == dict(dedicated.counts)
            assert result.metadata["seed"] == seed

    def test_resample_respects_chunking(self):
        """A deduplicated chunked job matches its dedicated chunked run."""
        backend = get_backend("density_matrix")
        jobs = execute(
            [measured_bell()] * 2, backend, shots=1024, seed=[1, 2],
            chunk_shots=512,
        )
        assert jobs.num_executed == 1
        dedicated = execute(
            measured_bell(), backend, shots=1024, seed=2, chunk_shots=512
        ).result()
        assert dict(jobs.result()[1].counts) == dict(dedicated.counts)

    def test_fallback_resample_runs_lazily_but_correctly(self):
        """Primary without exact probabilities: derived job runs for real.

        Poll loops must terminate (``done()`` goes true once no pool work
        is outstanding), and the lazy fallback simulation inside
        ``result()`` must match a dedicated run exactly.
        """
        from repro.devices.backend import StatevectorBackend
        from repro.runtime.job import JobStatus

        backend = StatevectorBackend(max_branches=1)  # forces per-shot mode
        jobs = execute(
            [measured_bell()] * 2, backend, shots=64, seed=[1, 2], max_workers=1
        )
        jobs[0].result()
        assert jobs.done()  # nothing outstanding in the pool
        result = jobs[1].result()
        assert jobs[1].status() is JobStatus.DONE
        assert jobs[1].time_taken > 0.0  # the fallback really simulated
        dedicated = backend.run(measured_bell(), shots=64, seed=2)
        assert dict(result.counts) == dict(dedicated.counts)

    def test_cancelled_primary_does_not_orphan_derived_jobs(self):
        """Dedup is transparent: siblings survive a primary's cancellation."""
        import threading

        from repro.devices.backend import Backend
        from repro.exceptions import JobError
        from repro.results.counts import Counts
        from repro.results.result import Result

        release = threading.Event()

        class Gate(Backend):
            name = "gate"
            returns_probabilities = False

            def run(self, circuit, shots=1024, seed=None):
                release.wait(timeout=10)
                return Result(counts=Counts({"0": shots}), shots=shots)

        blocker = Gate()
        fast = get_backend("density_matrix")
        # One worker: the gate job occupies it so the dedup group's primary
        # (job 2) stays queued and cancellable.  Pinned to the thread
        # executor: the gate's event cannot cross a process boundary and
        # inline execution has no queue to cancel from.
        jobs = execute(
            [measured_bell()] * 3,
            [blocker, fast, fast],
            shots=64,
            seed=[0, 1, 1],
            max_workers=1,
            executor="thread",
        )
        assert jobs[1].cancel() is True
        release.set()
        jobs[0].result()
        with pytest.raises(JobError, match="cancelled"):
            jobs[1].result()
        # The derived sibling was never cancelled and still yields counts.
        result = jobs[2].result()
        dedicated = fast.run(measured_bell(), shots=64, seed=1)
        assert dict(result.counts) == dict(dedicated.counts)

    def test_per_shot_engine_distinct_seeds_run_independently(self):
        backend = get_backend("stabilizer")
        jobs = execute([measured_bell()] * 3, backend, shots=128, seed=[1, 2, 3])
        assert jobs.num_executed == 3
        for seed, result in zip([1, 2, 3], jobs.result()):
            dedicated = backend.run(measured_bell(), shots=128, seed=seed)
            assert dict(result.counts) == dict(dedicated.counts)

    def test_unseeded_jobs_never_share(self):
        jobs = execute([measured_bell()] * 3, "stabilizer", shots=64, seed=None)
        assert jobs.num_executed == 3

    def test_dedupe_disabled(self):
        jobs = execute([measured_bell()] * 4, "density_matrix", shots=64, seed=1,
                       dedupe=False)
        assert jobs.num_executed == 4

    def test_distinct_backends_never_group(self):
        jobs = execute(
            [measured_bell(), measured_bell()],
            [get_backend("density_matrix"), get_backend("density_matrix")],
            shots=64,
            seed=1,
        )
        assert jobs.num_executed == 2


class TestPlanBatches:
    def test_plan_counts(self):
        backend = get_backend("density_matrix")
        circuits = [measured_bell()] * 3 + [measured_ghz()]
        plan = plan_batches(circuits, [backend] * 4, [64] * 4, [5] * 4)
        assert plan.num_executed == 2
        roles = [j.role for j in plan.jobs]
        assert roles == ["primary", "share", "share", "primary"]

    def test_plan_dedupe_off(self):
        backend = get_backend("density_matrix")
        plan = plan_batches(
            [measured_bell()] * 2, [backend] * 2, [64] * 2, [5] * 2, dedupe=False
        )
        assert [j.role for j in plan.jobs] == ["independent", "independent"]
