"""Tests for Job/JobSet lifecycle, chunk merging, and failure handling."""

import threading

import pytest

from repro.circuits import library
from repro.devices.backend import Backend
from repro.exceptions import JobError
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime.batching import chunk_seed, split_shots
from repro.runtime.execute import execute
from repro.runtime.job import JobStatus


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


class BlockingBackend(Backend):
    """Backend that blocks until released (for status/cancel tests).

    Tests using it pin ``executor="thread"``: the in-memory events cannot
    cross a process boundary, and inline (serial) execution would block the
    test thread itself — so these tests stay meaningful under the CI
    executor matrix (``REPRO_EXECUTOR``).
    """

    name = "blocking"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, circuit, shots=1024, seed=None):
        self.started.set()
        assert self.release.wait(timeout=10)
        return Result(counts=Counts({"0": shots}), shots=shots)


class FailingBackend(Backend):
    name = "failing"

    def run(self, circuit, shots=1024, seed=None):
        raise RuntimeError("engine exploded")


class TestShotSplitting:
    def test_no_chunking(self):
        assert split_shots(1000, None) == [1000]
        assert split_shots(1000, 1000) == [1000]
        assert split_shots(1000, 2000) == [1000]

    def test_even_split(self):
        assert split_shots(1000, 250) == [250, 250, 250, 250]

    def test_remainder_chunk(self):
        assert split_shots(1000, 300) == [300, 300, 300, 100]

    def test_zero_shots(self):
        assert split_shots(0, 128) == [0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_shots(-1, None)
        with pytest.raises(ValueError):
            split_shots(100, 0)

    def test_chunk_seed_deterministic_and_distinct(self):
        seeds = [chunk_seed(42, i) for i in range(4)]
        assert seeds == [chunk_seed(42, i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert chunk_seed(None, 3) is None


class TestJobLifecycle:
    def test_status_transitions(self):
        backend = BlockingBackend()
        job = execute(
            measured_bell(), backend, shots=10, max_workers=1, executor="thread"
        )
        assert backend.started.wait(timeout=10)
        assert job.status() is JobStatus.RUNNING
        assert not job.done()
        backend.release.set()
        result = job.result()
        assert job.status() is JobStatus.DONE
        assert job.done()
        assert result.counts == {"0": 10}

    def test_result_is_cached(self):
        job = execute(measured_bell(), "statevector", shots=100, seed=1)
        assert job.result() is job.result()

    def test_counts_shorthand(self):
        job = execute(measured_bell(), "statevector", shots=100, seed=1)
        assert job.counts() == job.result().counts

    def test_failure_raises_joberror(self):
        job = execute(measured_bell(), FailingBackend(), shots=10, max_workers=1)
        with pytest.raises(JobError, match="engine exploded"):
            job.result()
        assert job.status() is JobStatus.ERROR

    def test_cancel_queued_job(self):
        backend = BlockingBackend()
        # One worker: the first job occupies it, the second stays queued.
        jobs = execute([measured_bell()] * 2, backend, shots=10, max_workers=1,
                       dedupe=False, executor="thread")
        assert backend.started.wait(timeout=10)
        assert jobs[1].cancel() is True
        assert jobs[1].status() is JobStatus.CANCELLED
        backend.release.set()
        jobs[0].result()
        with pytest.raises(JobError, match="cancelled"):
            jobs[1].result()

    def test_cancel_finished_job_fails(self):
        job = execute(measured_bell(), "statevector", shots=10, seed=1)
        job.result()
        assert job.cancel() is False

    def test_time_taken_positive(self):
        job = execute(measured_bell(), "statevector", shots=100, seed=1)
        job.result()
        assert job.time_taken > 0.0

    def test_repr_mentions_backend(self):
        job = execute(measured_bell(), "statevector", shots=10, seed=1)
        job.result()
        assert "statevector" in repr(job)


class TestChunkMerging:
    def test_chunked_counts_total(self):
        job = execute(
            measured_bell(), "stabilizer", shots=1000, seed=3, chunk_shots=300
        )
        result = job.result()
        assert result.counts.shots == 1000
        assert result.shots == 1000
        assert result.metadata["chunks"] == 4
        assert len(result.metadata["chunk_seeds"]) == 4

    def test_chunked_exact_engine_keeps_probabilities(self):
        job = execute(
            measured_bell(), "statevector", shots=1000, seed=3, chunk_shots=500
        )
        result = job.result()
        assert result.probabilities is not None
        assert result.counts.shots == 1000


class TestJobSet:
    def test_ordering_and_access(self):
        circuits = [measured_bell() for _ in range(3)]
        jobs = execute(circuits, "statevector", shots=100, seed=5)
        assert len(jobs) == 3
        assert jobs[0] is list(jobs)[0]
        assert jobs.result()[1].counts == jobs[1].counts()

    def test_statuses_and_done(self):
        jobs = execute([measured_bell()] * 2, "statevector", shots=50, seed=2)
        jobs.result()
        assert jobs.done()
        assert jobs.statuses() == [JobStatus.DONE, JobStatus.DONE]

    def test_empty_batch(self):
        jobs = execute([], "statevector")
        assert len(jobs) == 0
        assert jobs.result() == []
        assert jobs.done()

    def test_repr_summarises(self):
        jobs = execute([measured_bell()] * 2, "statevector", shots=10, seed=1)
        jobs.result()
        assert "done=2" in repr(jobs)
