"""Satellite: streaming collection (``as_completed``) and job priorities.

The streaming contract is exactly-once delivery in completion order: every
job of the set surfaces exactly once, whatever its terminal state — done,
cancelled, or failed — so a consumer loop never hangs on a lost job and
never double-processes one.  Priorities shape executor submission order,
which the serial executor turns into exact execution order.
"""

import threading

import pytest

from repro.circuits import library
from repro.devices.backend import Backend
from repro.exceptions import JobError
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import execute
from repro.runtime.job import JobStatus


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


class GateBackend(Backend):
    """Backend whose runs block until released (streaming-order tests)."""

    name = "gate"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, circuit, shots=1024, seed=None):
        self.started.set()
        assert self.release.wait(timeout=10)
        return Result(counts=Counts({"0": shots}), shots=shots)


class FailingBackend(Backend):
    name = "failing"

    def run(self, circuit, shots=1024, seed=None):
        raise RuntimeError("engine exploded")


class RecordingBackend(Backend):
    """Records the ``shots`` of each run, i.e. the execution order."""

    name = "recorder"

    def __init__(self):
        self.order = []

    def run(self, circuit, shots=1024, seed=None):
        self.order.append(shots)
        return Result(counts=Counts({"0": shots}), shots=shots)


class TestAsCompleted:
    def test_yields_every_job_exactly_once(self):
        jobs = execute(
            [measured_bell()] * 5, "statevector", shots=list(range(10, 60, 10)),
            seed=[1, 2, 3, 4, 5], executor="thread", dedupe=False,
        )
        seen = [job.job_id for job in jobs.as_completed(timeout=30)]
        assert sorted(seen) == sorted(job.job_id for job in jobs)
        assert len(seen) == len(set(seen)) == 5

    def test_completion_order_not_submission_order(self):
        gate = GateBackend()
        jobs = execute(
            [measured_bell()] * 2,
            [gate, "statevector"],
            shots=16,
            seed=1,
            executor="thread",
            max_workers=2,
        )
        stream = jobs.as_completed(timeout=30)
        first = next(stream)
        assert first is jobs[1]  # the fast job surfaces while job 0 blocks
        gate.release.set()
        assert next(stream) is jobs[0]
        with pytest.raises(StopIteration):
            next(stream)

    def test_cancelled_jobs_still_surface(self):
        gate = GateBackend()
        # One worker: the gate occupies it, the second job stays queued.
        jobs = execute(
            [measured_bell()] * 2, gate, shots=16, executor="thread",
            max_workers=1, dedupe=False,
        )
        assert gate.started.wait(timeout=10)
        assert jobs[1].cancel() is True
        gate.release.set()
        streamed = list(jobs.as_completed(timeout=30))
        assert len(streamed) == 2
        statuses = {job.job_id: job.status() for job in streamed}
        assert statuses[jobs[0].job_id] is JobStatus.DONE
        assert statuses[jobs[1].job_id] is JobStatus.CANCELLED
        with pytest.raises(JobError, match="cancelled"):
            jobs[1].result()

    def test_failed_jobs_still_surface(self):
        jobs = execute(
            [measured_bell()] * 2,
            [FailingBackend(), "statevector"],
            shots=16,
            seed=1,
            executor="thread",
        )
        streamed = list(jobs.as_completed(timeout=30))
        assert len(streamed) == 2
        failed = next(job for job in streamed if job.backend.name == "failing")
        assert failed.status() is JobStatus.ERROR
        with pytest.raises(JobError, match="engine exploded"):
            failed.result()

    def test_timeout_raises_but_jobs_survive(self):
        gate = GateBackend()
        jobs = execute(
            [measured_bell()], gate, shots=16, executor="thread", max_workers=1
        )
        with pytest.raises(JobError, match="pending"):
            list(jobs.as_completed(timeout=0.05))
        gate.release.set()
        # The stream can be restarted after the work finishes.
        assert [job.job_id for job in jobs.as_completed(timeout=30)] == [
            jobs[0].job_id
        ]

    def test_derived_jobs_stream_with_their_primary(self):
        jobs = execute(
            [measured_bell()] * 4, "density_matrix", shots=64, seed=7,
            executor="thread",
        )
        assert jobs.num_executed == 1
        streamed = list(jobs.as_completed(timeout=30))
        assert sorted(j.job_id for j in streamed) == sorted(
            j.job_id for j in jobs
        )

    def test_empty_set_streams_nothing(self):
        jobs = execute([], "statevector")
        assert list(jobs.as_completed()) == []

    def test_serial_executor_streams_in_submission_order(self):
        jobs = execute(
            [measured_bell()] * 3, "statevector", shots=[8, 16, 24],
            seed=[1, 2, 3], executor="serial", dedupe=False,
        )
        assert [job.shots for job in jobs.as_completed()] == [8, 16, 24]


class TestPriorities:
    def test_priority_orders_serial_execution(self):
        recorder = RecordingBackend()
        jobs = execute(
            [measured_bell()] * 3, recorder, shots=[1, 2, 3], seed=[1, 2, 3],
            priority=[0, 5, 1], executor="serial", dedupe=False,
        )
        # Highest priority ran first; equal-priority falls back to input order.
        assert recorder.order == [2, 3, 1]
        # JobSet order is untouched — input order, with priorities attached.
        assert [job.shots for job in jobs] == [1, 2, 3]
        assert [job.priority for job in jobs] == [0, 5, 1]

    def test_equal_priorities_keep_input_order(self):
        recorder = RecordingBackend()
        execute(
            [measured_bell()] * 3, recorder, shots=[1, 2, 3], seed=[1, 2, 3],
            priority=7, executor="serial", dedupe=False,
        )
        assert recorder.order == [1, 2, 3]

    def test_negative_priority_runs_last(self):
        recorder = RecordingBackend()
        execute(
            [measured_bell()] * 3, recorder, shots=[1, 2, 3], seed=[1, 2, 3],
            priority=[-1, 0, 0], executor="serial", dedupe=False,
        )
        assert recorder.order == [2, 3, 1]

    def test_priority_never_changes_counts(self):
        base = execute(
            [measured_bell()] * 3, "density_matrix", shots=128, seed=[1, 2, 3],
            executor="serial",
        ).counts()
        prioritised = execute(
            [measured_bell()] * 3, "density_matrix", shots=128, seed=[1, 2, 3],
            priority=[0, 9, 3], executor="serial",
        ).counts()
        assert [dict(c) for c in prioritised] == [dict(c) for c in base]

    def test_priority_list_length_validated(self):
        with pytest.raises(JobError, match="priority list"):
            execute(
                [measured_bell()] * 2, "statevector", shots=8, priority=[1, 2, 3]
            )
