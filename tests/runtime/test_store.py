"""Tests for the shared cache store: tiers, LRU semantics, corruption.

Three contracts are pinned here:

* **LRU unification** — `TranspileCache` and `DistributionCache` sit on
  the *same* `CacheStore`, so their eviction order and ``maxsize``
  semantics cannot drift apart again (they used to be two hand-rolled
  copies of the same OrderedDict machinery).
* **Persistence** — the disk tier round-trips entries across store
  instances (i.e. across processes) keyed by content fingerprints, with
  atomic writes and per-tier statistics.
* **Corruption tolerance** — a truncated, bit-flipped or alien on-disk
  entry is a miss, never an error, and never mis-serves data (the payload
  digest and stored-key check reject it).
"""

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results.result import Result
from repro.runtime.distcache import DistributionCache
from repro.runtime.cache import TranspileCache
from repro.runtime.store import (
    ENTRY_SUFFIX,
    MAGIC,
    CacheStore,
    DiskTier,
    default_cache_dir,
)


def entry_files(store):
    return sorted(store.disk.directory.glob(f"*{ENTRY_SUFFIX}"))


class TestMemoryOnlyStore:
    def test_lookup_store_roundtrip(self):
        store = CacheStore(maxsize=4)
        assert store.lookup("k") is None
        store.store("k", {"v": 1})
        assert store.lookup("k") == {"v": 1}
        assert store.hits == 1
        assert store.misses == 1
        assert len(store) == 1

    def test_lru_eviction_order(self):
        store = CacheStore(maxsize=2)
        store.store("a", 1)
        store.store("b", 2)
        assert store.lookup("a") == 1  # refresh "a": "b" becomes LRU
        store.store("c", 3)
        assert store.lookup("b") is None  # evicted
        assert store.lookup("a") == 1
        assert store.lookup("c") == 3
        assert store.stats()["memory"]["evictions"] == 1

    def test_maxsize_zero_disables(self):
        store = CacheStore(maxsize=0)
        store.store("k", 1)
        assert store.lookup("k") is None
        assert len(store) == 0
        assert store.misses == 1

    def test_maxsize_assignment_trims(self):
        store = CacheStore(maxsize=4)
        for i in range(4):
            store.store(i, i)
        store.maxsize = 2
        assert len(store) == 2
        # The two most recent survive.
        assert store.lookup(3) == 3
        assert store.lookup(0) is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            CacheStore(maxsize=-1)
        store = CacheStore()
        with pytest.raises(ValueError, match="maxsize"):
            store.maxsize = -1

    def test_clear_preserves_stats(self):
        store = CacheStore()
        store.store("k", 1)
        store.lookup("k")
        store.clear()
        assert len(store) == 0
        assert store.hits == 1

    def test_stats_shape(self):
        store = CacheStore()
        stats = store.stats()
        assert stats["disk"] is None
        assert set(stats["memory"]) == {
            "hits", "misses", "stores", "evictions", "errors", "entries",
        }


class TestDiskTierPersistence:
    def test_fresh_store_reads_previous_stores_entries(self, tmp_path):
        first = CacheStore(cache_dir=tmp_path, namespace="t")
        first.store(("fp", "dev"), {"lowered": True})
        # A different store instance over the same directory — the
        # in-process analogue of a second OS process.
        second = CacheStore(cache_dir=tmp_path, namespace="t")
        assert second.lookup(("fp", "dev")) == {"lowered": True}
        assert second.stats()["disk"]["hits"] == 1
        assert second.stats()["memory"]["misses"] == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        CacheStore(cache_dir=tmp_path, namespace="t").store("k", 7)
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        assert store.lookup("k") == 7
        assert store.lookup("k") == 7
        assert store.stats()["disk"]["hits"] == 1  # second hit was memory
        assert store.stats()["memory"]["hits"] == 1

    def test_namespaces_are_disjoint(self, tmp_path):
        a = CacheStore(cache_dir=tmp_path, namespace="a")
        b = CacheStore(cache_dir=tmp_path, namespace="b")
        a.store("k", "a-value")
        assert b.lookup("k") is None
        assert (tmp_path / "a").is_dir() and (tmp_path / "b").is_dir()

    def test_disk_lru_eviction_bounds_entries(self, tmp_path):
        store = CacheStore(cache_dir=tmp_path, namespace="t", disk_maxsize=2)
        for i in range(4):
            store.store(f"k{i}", i)
            # mtime granularity: make recency strictly ordered
            paths = entry_files(store)
            for offset, path in enumerate(sorted(paths, key=lambda p: p.stat().st_mtime)):
                os.utime(path, (path.stat().st_atime, 1000 + i * 10 + offset))
        assert len(entry_files(store)) == 2
        assert store.stats()["disk"]["evictions"] == 2

    def test_remove_spans_tiers(self, tmp_path):
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("k", 1)
        assert store.remove("k") is True
        assert store.lookup("k") is None
        assert entry_files(store) == []
        fresh = CacheStore(cache_dir=tmp_path, namespace="t")
        assert fresh.lookup("k") is None

    def test_clear_spans_tiers(self, tmp_path):
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("k", 1)
        store.clear()
        assert entry_files(store) == []

    def test_keys_spans_tiers(self, tmp_path):
        CacheStore(cache_dir=tmp_path, namespace="t").store(("a", "b"), 1)
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store(("c", "d"), 2)
        assert sorted(store.keys()) == [("a", "b"), ("c", "d")]

    def test_attach_disk_later(self, tmp_path):
        store = CacheStore()
        store.store("early", 1)
        store.attach_disk(tmp_path)
        store.store("late", 2)
        fresh = CacheStore(cache_dir=tmp_path, namespace="store")
        assert fresh.lookup("late") == 2
        assert fresh.lookup("early") is None  # pre-attach entries stay local
        store.attach_disk(None)
        assert store.stats()["disk"] is None

    def test_unpicklable_value_skips_disk_not_memory(self, tmp_path):
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("k", lambda: None)  # lambdas don't pickle
        assert store.lookup("k") is not None
        assert entry_files(store) == []
        assert store.stats()["disk"]["errors"] == 1

    def test_pickled_store_ships_config_and_disk_dir(self, tmp_path):
        store = CacheStore(maxsize=7, cache_dir=tmp_path, namespace="t")
        store.store("k", 1)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.maxsize == 7
        assert len(clone) == 0  # memory contents never ship
        assert clone.hits == 0 and clone.misses == 0
        # ... but the disk tier is shared: the clone reads the original's
        # persisted entries (what a spawn-started pool worker sees).
        assert clone.lookup("k") == 1
        assert clone.stats()["disk"]["hits"] == 1


class TestCorruptionTolerance:
    def _seeded(self, tmp_path, value={"p": 0.5}):
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("key", value)
        (path,) = entry_files(store)
        return store, path

    def _fresh(self, tmp_path):
        return CacheStore(cache_dir=tmp_path, namespace="t")

    def test_truncated_entry_is_a_miss(self, tmp_path):
        _store, path = self._seeded(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        fresh = self._fresh(tmp_path)
        assert fresh.lookup("key") is None
        assert fresh.stats()["disk"]["errors"] == 1
        assert not path.exists()  # quarantined

    def test_every_single_bit_flip_is_a_miss_or_equal(self, tmp_path):
        """Flip one byte at a time through the whole file: never an error,
        never wrong data."""
        _store, path = self._seeded(tmp_path, value={"p": 0.25})
        blob = bytearray(path.read_bytes())
        for pos in range(0, len(blob), max(1, len(blob) // 40)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x01
            path.write_bytes(bytes(mutated))
            got = self._fresh(tmp_path).lookup("key")
            assert got is None or got == {"p": 0.25}

    def test_emptied_entry_is_a_miss(self, tmp_path):
        _store, path = self._seeded(tmp_path)
        path.write_bytes(b"")
        assert self._fresh(tmp_path).lookup("key") is None

    def test_alien_file_in_directory_is_ignored(self, tmp_path):
        store, _path = self._seeded(tmp_path)
        (store.disk.directory / "README.txt").write_text("not an entry")
        fresh = self._fresh(tmp_path)
        assert fresh.lookup("key") == {"p": 0.5}
        assert "README.txt" not in [k for k in fresh.keys()]

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        _store, path = self._seeded(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob.replace(MAGIC, b"repro-cache-store/v0\n", 1))
        assert self._fresh(tmp_path).lookup("key") is None

    def test_key_mismatch_never_aliases(self, tmp_path):
        """A file renamed onto another key's filename must miss (the stored
        key is verified), and must NOT be quarantined as corrupt."""
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("a", "value-a")
        (path,) = entry_files(store)
        alias = store.disk._path("b")
        path.rename(alias)
        fresh = self._fresh(tmp_path)
        assert fresh.lookup("b") is None
        assert alias.exists()
        assert fresh.stats()["disk"]["errors"] == 0

    def test_corrupt_entries_skipped_by_keys(self, tmp_path):
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.store("a", 1)
        store.store("b", 2)
        paths = entry_files(store)
        paths[0].write_bytes(b"garbage")
        assert len(store.keys()) >= 1  # memory still has both; disk skips one

    def test_store_survives_readonly_directory(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        store = CacheStore(cache_dir=tmp_path, namespace="t")
        store.disk.directory.chmod(0o500)
        try:
            store.store("k", 1)  # disk write fails silently
            assert store.lookup("k") == 1  # memory tier still serves
            assert store.stats()["disk"]["errors"] == 1
        finally:
            store.disk.directory.chmod(0o700)


#: Probability dictionaries over 3-bit outcomes, then normalised.
_distributions = st.dictionaries(
    st.integers(min_value=0, max_value=7).map(lambda i: format(i, "03b")),
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestResultRoundTrip:
    @given(raw=_distributions, shots=st.integers(min_value=1, max_value=512))
    @settings(max_examples=40, deadline=None)
    def test_disk_roundtrip_preserves_distribution_and_resampling(
        self, tmp_path_factory, raw, shots
    ):
        """CacheStore round-trips arbitrary cached Result distributions and
        disk-hit == memory-hit == the original, down to resampled counts."""
        import numpy as np

        from repro.results.counts import counts_from_probabilities

        tmp_path = tmp_path_factory.mktemp("roundtrip")
        total = sum(raw.values())
        probabilities = {k: v / total for k, v in raw.items()}
        original = Result(
            shots=0, probabilities=probabilities, metadata={"engine": "test"}
        )

        store = CacheStore(cache_dir=tmp_path, namespace="dist")
        store.store(("fp", "be"), original)
        memory_hit = store.lookup(("fp", "be"))
        disk_hit = CacheStore(cache_dir=tmp_path, namespace="dist").lookup(
            ("fp", "be")
        )

        assert memory_hit.probabilities == probabilities
        assert disk_hit.probabilities == probabilities  # bit-exact floats
        assert disk_hit.metadata["engine"] == "test"
        draws = [
            counts_from_probabilities(
                source.probabilities, shots, np.random.default_rng(11)
            )
            for source in (original, memory_hit, disk_hit)
        ]
        assert dict(draws[0]) == dict(draws[1]) == dict(draws[2])


class _TranspileAdapter:
    """Drives TranspileCache through its public store/lookup surface."""

    def __init__(self, maxsize, cache_dir=None):
        self.cache = TranspileCache(maxsize=maxsize, cache_dir=cache_dir)

    def key(self, i):
        return (f"circuit-fp-{i}", "device-fp", None, True)

    def insert(self, i):
        self.cache.store(self.key(i), {"lowered": i})

    def probe(self, i):
        return self.cache.lookup(self.key(i)) is not None


class _DistributionAdapter:
    """Drives DistributionCache through its public store/lookup surface."""

    def __init__(self, maxsize, cache_dir=None):
        self.cache = DistributionCache(maxsize=maxsize, cache_dir=cache_dir)

    def key(self, i):
        return (f"circuit-fp-{i}", "backend-fp")

    def insert(self, i):
        self.cache.store(self.key(i), Result(shots=8, probabilities={"0": 1.0}))

    def probe(self, i):
        return self.cache.lookup(self.key(i)) is not None


@pytest.mark.parametrize(
    "adapter_cls", [_TranspileAdapter, _DistributionAdapter],
    ids=["transpile", "distribution"],
)
class TestUnifiedLruSemantics:
    """Regression for the duplicated-LRU drift: both caches must show
    identical eviction order and maxsize semantics because they share one
    CacheStore implementation."""

    def test_backed_by_the_shared_store(self, adapter_cls):
        assert type(adapter_cls(maxsize=4).cache._store) is CacheStore

    def test_eviction_order_script(self, adapter_cls):
        a = adapter_cls(maxsize=3)
        for i in (0, 1, 2):
            a.insert(i)
        assert a.probe(0)  # refresh 0 -> LRU order is now 1, 2, 0
        a.insert(3)  # evicts 1
        assert [a.probe(i) for i in (0, 1, 2, 3)] == [True, False, True, True]
        assert len(a.cache) == 3
        assert a.cache.stats()["memory"]["evictions"] == 1

    def test_maxsize_zero_semantics(self, adapter_cls):
        a = adapter_cls(maxsize=0)
        a.insert(0)
        assert not a.probe(0)
        assert len(a.cache) == 0
        assert a.cache.hits == 0
        assert a.cache.misses == 1

    def test_negative_maxsize_rejected(self, adapter_cls):
        with pytest.raises(ValueError, match="maxsize"):
            adapter_cls(maxsize=-1)

    def test_clear_preserves_stats(self, adapter_cls):
        a = adapter_cls(maxsize=4)
        a.insert(0)
        assert a.probe(0)
        a.cache.clear()
        assert len(a.cache) == 0
        assert a.cache.hits == 1

    def test_disk_tier_respects_eviction_independence(self, adapter_cls, tmp_path):
        """Memory eviction never deletes the disk copy: an evicted entry is
        re-served from disk."""
        a = adapter_cls(maxsize=1, cache_dir=tmp_path)
        a.insert(0)
        a.insert(1)  # evicts 0 from memory
        assert len(a.cache) == 1
        assert a.probe(0)  # disk hit re-promotes
        assert a.cache.stats()["disk"]["hits"] == 1


class TestDefaultCacheDir:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None

    def test_blank_means_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        assert default_cache_dir() is None

    def test_set_value_returned(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"

    def test_set_default_cache_dir_attaches_and_detaches(self, tmp_path):
        from repro.runtime import set_default_cache_dir
        from repro.runtime.cache import DEFAULT_CACHE
        from repro.runtime.distcache import DEFAULT_DISTRIBUTION_CACHE

        before_t = DEFAULT_CACHE._store.disk
        before_d = DEFAULT_DISTRIBUTION_CACHE._store.disk
        try:
            set_default_cache_dir(str(tmp_path))
            assert DEFAULT_CACHE.stats()["disk"]["directory"] == str(
                tmp_path / "transpile"
            )
            assert DEFAULT_DISTRIBUTION_CACHE.stats()["disk"]["directory"] == str(
                tmp_path / "distribution"
            )
        finally:
            DEFAULT_CACHE._store.disk = before_t
            DEFAULT_DISTRIBUTION_CACHE._store.disk = before_d


class TestBadCacheDirDegrades:
    def test_unusable_cache_dir_warns_and_stays_memory_only(self):
        """A bad directory disables persistence — never raises (the default
        caches are built at import from $REPRO_CACHE_DIR)."""
        with pytest.warns(RuntimeWarning, match="disk cache tier disabled"):
            store = CacheStore(cache_dir="/dev/null/not-a-dir", namespace="t")
        store.store("k", 1)
        assert store.lookup("k") == 1
        assert store.stats()["disk"] is None

    def test_attach_disk_with_bad_dir_degrades(self):
        store = CacheStore()
        with pytest.warns(RuntimeWarning, match="disk cache tier disabled"):
            store.attach_disk("/dev/null/not-a-dir")
        assert store.stats()["disk"] is None

    def test_bad_env_cache_dir_does_not_break_import(self):
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = "/dev/null/not-a-dir"
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.run(
            [sys.executable, "-c",
             "import repro.runtime; print(repro.runtime.transpile_cache_stats()['disk'])"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "None"


class TestDisablingNeverDeletesDiskEntries:
    def test_maxsize_zero_leaves_the_persistent_tier_intact(self, tmp_path):
        """--no-transpile-cache style disabling (maxsize = 0) must not wipe
        the disk entries other invocations rely on."""
        cache = TranspileCache(cache_dir=tmp_path)
        cache.store(("fp", "dev", None, True), {"lowered": 1})
        cache.maxsize = 0
        assert cache.lookup(("fp", "dev", None, True)) is None  # disabled
        fresh = TranspileCache(cache_dir=tmp_path)
        assert fresh.lookup(("fp", "dev", None, True)) == {"lowered": 1}


class TestDiskTierDirect:
    def test_atomic_write_leaves_no_partials(self, tmp_path):
        tier = DiskTier(tmp_path)
        for i in range(20):
            tier.store(f"k{i}", list(range(50)))
        leftovers = [
            p for p in tmp_path.iterdir() if not p.name.endswith(ENTRY_SUFFIX)
        ]
        assert leftovers == []

    def test_negative_maxsize_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="maxsize"):
            DiskTier(tmp_path, maxsize=-1)

    def test_unbounded_disk_keeps_everything(self, tmp_path):
        tier = DiskTier(tmp_path, maxsize=None)
        for i in range(10):
            tier.store(i, i)
        assert len(tier) == 10
