"""Tests for the backend registry / provider."""

import pytest

from repro.devices.backend import (
    Backend,
    DensityMatrixBackend,
    NoisyDeviceBackend,
    StabilizerBackend,
    StatevectorBackend,
    TrajectoryDeviceBackend,
)
from repro.exceptions import ProviderError
from repro.runtime.provider import (
    get_backend,
    list_backends,
    register_backend,
    register_device,
    resolve_backend,
)


class TestGetBackend:
    @pytest.mark.parametrize(
        "spec, cls",
        [
            ("statevector", StatevectorBackend),
            ("density_matrix", DensityMatrixBackend),
            ("stabilizer", StabilizerBackend),
        ],
    )
    def test_simple_specs(self, spec, cls):
        assert isinstance(get_backend(spec), cls)

    def test_noisy_device_spec(self):
        backend = get_backend("noisy:ibmqx4")
        assert isinstance(backend, NoisyDeviceBackend)
        assert backend.device.name == "ibmqx4"
        assert backend.name == "noisy(ibmqx4)"

    def test_trajectory_device_spec(self):
        backend = get_backend("trajectory:ibmqx4")
        assert isinstance(backend, TrajectoryDeviceBackend)

    def test_options_forwarded(self):
        backend = get_backend("noisy:ibmqx4", noise_scale=2.5, transpile=False)
        assert backend.noise_scale == 2.5
        assert backend.transpile is False

    def test_generic_device_specs(self):
        assert get_backend("noisy:linear5").device.num_qubits == 5
        assert get_backend("noisy:grid9").device.num_qubits == 9

    def test_unknown_backend(self):
        with pytest.raises(ProviderError, match="unknown backend"):
            get_backend("quantum_annealer")

    def test_unknown_family(self):
        with pytest.raises(ProviderError, match="unknown backend family"):
            get_backend("exact:ibmqx4")

    def test_unknown_device(self):
        with pytest.raises(ProviderError, match="unknown device"):
            get_backend("noisy:ibmqx9000")

    def test_empty_spec(self):
        with pytest.raises(ProviderError):
            get_backend("")


class TestErrorMessagesListProviders:
    """Satellite: lookup failures must teach the caller the registry."""

    def test_unknown_backend_lists_specs_and_forms(self):
        with pytest.raises(ProviderError) as excinfo:
            get_backend("quantum_annealer")
        message = str(excinfo.value)
        assert "registered specs" in message
        assert "statevector" in message
        assert "noisy:ibmqx4" in message
        assert "valid spec forms" in message
        assert "'<family>:<device>'" in message

    def test_unknown_family_lists_families_and_devices(self):
        with pytest.raises(ProviderError) as excinfo:
            get_backend("exact:ibmqx4")
        message = str(excinfo.value)
        assert "registered families" in message
        assert "'noisy'" in message
        assert "'trajectory'" in message
        assert "'ibmqx4'" in message
        assert "valid spec forms" in message

    def test_unknown_device_lists_devices(self):
        with pytest.raises(ProviderError) as excinfo:
            get_backend("noisy:ibmqx9000")
        message = str(excinfo.value)
        assert "registered devices" in message
        assert "'ibmqx4'" in message
        assert "'linear5'" in message
        assert "valid spec forms" in message

    def test_non_string_spec_explains_forms(self):
        with pytest.raises(ProviderError) as excinfo:
            get_backend(None)
        message = str(excinfo.value)
        assert "non-empty string" in message
        assert "valid spec forms" in message
        assert "'statevector'" in message

    def test_runtime_registrations_appear_in_message(self):
        """The message reflects the *live* registry, not a frozen list."""
        from repro.runtime import provider

        register_backend("msg_probe_engine", StatevectorBackend)
        try:
            with pytest.raises(ProviderError) as excinfo:
                get_backend("nope")
            assert "msg_probe_engine" in str(excinfo.value)
        finally:
            provider._BACKEND_FACTORIES.pop("msg_probe_engine", None)


class TestListBackends:
    def test_contains_all_forms(self):
        specs = list_backends()
        assert "statevector" in specs
        assert "noisy:ibmqx4" in specs
        assert "trajectory:ibmqx4" in specs
        assert specs == sorted(specs)

    def test_every_listed_spec_instantiates(self):
        for spec in list_backends():
            assert isinstance(get_backend(spec), Backend)


class TestRegistration:
    def test_register_backend(self):
        class FakeBackend(Backend):
            name = "fake"

        register_backend("fake_engine_for_test", FakeBackend)
        try:
            assert isinstance(get_backend("fake_engine_for_test"), FakeBackend)
            with pytest.raises(ProviderError, match="already registered"):
                register_backend("fake_engine_for_test", FakeBackend)
            register_backend("fake_engine_for_test", FakeBackend, overwrite=True)
        finally:
            from repro.runtime import provider

            provider._BACKEND_FACTORIES.pop("fake_engine_for_test", None)

    def test_register_device(self):
        from repro.devices.generic import linear_device

        register_device("line3_for_test", lambda: linear_device(3))
        try:
            backend = get_backend("noisy:line3_for_test")
            assert backend.device.num_qubits == 3
        finally:
            from repro.runtime import provider

            provider._DEVICE_FACTORIES.pop("line3_for_test", None)

    def test_colon_names_rejected(self):
        with pytest.raises(ProviderError, match="must not contain"):
            register_backend("bad:name", StatevectorBackend)
        with pytest.raises(ProviderError, match="must not contain"):
            register_device("bad:name", lambda: None)


class TestResolveBackend:
    def test_instance_passthrough(self):
        backend = StatevectorBackend()
        assert resolve_backend(backend) is backend

    def test_spec_resolution(self):
        assert isinstance(resolve_backend("stabilizer"), StabilizerBackend)

    def test_options_with_instance_rejected(self):
        with pytest.raises(ProviderError, match="spec string"):
            resolve_backend(StatevectorBackend(), noise_scale=2.0)
