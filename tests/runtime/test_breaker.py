"""Tests for the per-backend circuit breaker and its scheduler wiring."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import CircuitOpen
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import CircuitBreaker, Scheduler


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def tripped_breaker(clock, **overrides):
    """A breaker driven to ``open`` with the smallest legal window."""
    kwargs = dict(failure_threshold=0.5, min_samples=2, window=4,
                  cooldown_s=10.0, clock=clock)
    kwargs.update(overrides)
    breaker = CircuitBreaker(**kwargs)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    return breaker


class TestCircuitBreakerUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            CircuitBreaker(min_samples=0)
        with pytest.raises(ValueError, match="min_samples"):
            CircuitBreaker(min_samples=8, window=4)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=-1)
        with pytest.raises(ValueError, match="probe_limit"):
            CircuitBreaker(probe_limit=0)

    def test_closed_admits_everything(self):
        breaker = CircuitBreaker()
        admitted, retry_after = breaker.allow()
        assert admitted and retry_after == 0.0

    def test_single_failure_does_not_open_cold_breaker(self):
        breaker = CircuitBreaker(min_samples=2, window=4)
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_opens_at_threshold_once_sampled(self):
        breaker = CircuitBreaker(failure_threshold=0.5, min_samples=4,
                                 window=8)
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/3 failures, under threshold
        breaker.record_failure()
        assert breaker.state == "open"  # 2/4 at min_samples

    def test_open_rejects_with_shrinking_retry_after(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        admitted, retry_after = breaker.allow()
        assert not admitted
        assert retry_after == pytest.approx(10.0)
        clock.advance(6.0)
        _, retry_after = breaker.allow()
        assert retry_after == pytest.approx(4.0)

    def test_half_open_probe_budget(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock, probe_limit=1)
        clock.advance(10.0)
        assert breaker.state == "half_open"
        admitted, _ = breaker.allow()
        assert admitted  # the probe slot
        admitted, retry_after = breaker.allow()
        assert not admitted and retry_after > 0  # budget spent

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(10.0)
        assert breaker.allow()[0]
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)  # fresh cooldown: 9 < 10 seconds elapsed
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_probe_successes_close_and_clear_window(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock, probe_successes=2)
        clock.advance(10.0)
        assert breaker.allow()[0]
        breaker.record_success()
        assert breaker.state == "half_open"  # one win is not enough
        assert breaker.allow()[0]
        breaker.record_success()
        assert breaker.state == "closed"
        # The window was cleared: old failures cannot instantly re-open.
        assert breaker.snapshot()["window_count"] == 0

    def test_snapshot_shape(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        breaker.allow()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["failure_rate"] == 1.0
        assert snap["window_count"] == 2
        assert snap["transitions"] == 1
        assert snap["rejections"] == 1
        assert snap["probes_in_flight"] == 0


class SickBackend(Backend):
    name = "sick"

    def run(self, circuit, shots=1024, seed=None):
        raise RuntimeError("device offline")


class HealthyBackend(Backend):
    name = "healthy"

    def run(self, circuit, shots=1024, seed=None):
        return Result(counts=Counts({"0": shots}), shots=shots)


def named_circuit(name):
    circuit = QuantumCircuit(1, name=name)
    circuit.measure_all()
    return circuit


class TestSchedulerBreakerIntegration:
    BREAKER = dict(failure_threshold=1.0, min_samples=2, window=4,
                   cooldown_s=60.0)

    def test_failing_backend_opens_breaker_and_gates_submit(self):
        with Scheduler(executor="serial", breaker=self.BREAKER) as scheduler:
            for i in range(2):
                scheduler.submit(named_circuit(f"doomed{i}"), SickBackend(),
                                 shots=1, retry=False)
            assert scheduler.wait_idle(timeout=30)
            with pytest.raises(CircuitOpen) as info:
                scheduler.submit(named_circuit("rejected"), SickBackend(),
                                 shots=1, retry=False)
            assert info.value.backend == "sick"
            assert info.value.retry_after > 0
            snapshot = scheduler.stats()["breakers"]["sick"]
            assert snapshot["state"] == "open"
            assert snapshot["rejections"] == 1
            # Other backends are unaffected: breakers are per-spec.
            batch = scheduler.submit(named_circuit("fine"), HealthyBackend(),
                                     shots=4)
            assert batch.result()[0].counts == {"0": 4}

    def test_breaker_disabled_never_gates(self):
        with Scheduler(executor="serial", breaker=False) as scheduler:
            for i in range(3):
                scheduler.submit(named_circuit(f"doomed{i}"), SickBackend(),
                                 shots=1, retry=False)
            assert scheduler.wait_idle(timeout=30)
            scheduler.submit(named_circuit("still-admitted"), SickBackend(),
                             shots=1, retry=False)
            assert scheduler.wait_idle(timeout=30)
            assert scheduler.stats()["breakers"] == {}

    def test_per_circuit_backend_sequences_are_ungated(self):
        with Scheduler(executor="serial", breaker=self.BREAKER) as scheduler:
            batch = scheduler.submit(
                [named_circuit("a"), named_circuit("b")],
                [HealthyBackend(), HealthyBackend()], shots=2,
            )
            results = batch.result()
            assert [r.counts for r in results] == [{"0": 2}, {"0": 2}]
            assert scheduler.stats()["breakers"] == {}
