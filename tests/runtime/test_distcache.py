"""Tests for the cross-call distribution cache and backend content hashes."""

import time

import pytest

from repro.circuits import library
from repro.devices.backend import Backend, DensityMatrixBackend, NoisyDeviceBackend
from repro.devices.generic import linear_device
from repro.devices.ibmqx4 import ibmqx4
from repro.runtime import DistributionCache, execute, get_backend
from repro.runtime.distcache import backend_fingerprint, distribution_key
from repro.transpiler.layout import Layout


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


def measured_ghz(n=3):
    qc = library.ghz_state(n)
    qc.measure_all()
    return qc


class SlowTalliedBackend(Backend):
    """An exact backend that sleeps and tallies ``run()`` calls in a file.

    Module-level (picklable) so it can cross a process-pool boundary; the
    file-based tally counts simulations wherever they happen — the worker
    process or this one.
    """

    name = "slow-tallied"
    returns_probabilities = True

    def __init__(self, tally_path, delay=0.05):
        self.tally_path = str(tally_path)
        self.delay = delay
        self._inner = DensityMatrixBackend()

    def run(self, circuit, shots=1024, seed=None):
        time.sleep(self.delay)
        with open(self.tally_path, "a") as handle:
            handle.write("run\n")
        return self._inner.run(circuit, shots=shots, seed=seed)

    def runs(self) -> int:
        try:
            with open(self.tally_path) as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def content_fingerprint(self):
        return f"slow-tallied|{self._inner.content_fingerprint()}"


class TestBackendContentFingerprint:
    def test_same_configuration_shares_fingerprint(self):
        a = NoisyDeviceBackend(ibmqx4())
        b = NoisyDeviceBackend(ibmqx4())
        assert backend_fingerprint(a) == backend_fingerprint(b)

    def test_noise_scale_separates(self):
        a = NoisyDeviceBackend(ibmqx4(), noise_scale=1.0)
        b = NoisyDeviceBackend(ibmqx4(), noise_scale=2.0)
        assert backend_fingerprint(a) != backend_fingerprint(b)

    def test_device_separates(self):
        a = NoisyDeviceBackend(ibmqx4())
        b = NoisyDeviceBackend(linear_device(5))
        assert backend_fingerprint(a) != backend_fingerprint(b)

    def test_layout_separates(self):
        a = NoisyDeviceBackend(ibmqx4())
        b = NoisyDeviceBackend(ibmqx4(), layout=Layout([1, 0], num_physical=5))
        assert backend_fingerprint(a) != backend_fingerprint(b)

    def test_transpile_flag_separates(self):
        a = NoisyDeviceBackend(ibmqx4())
        b = NoisyDeviceBackend(ibmqx4(), transpile=False)
        assert backend_fingerprint(a) != backend_fingerprint(b)

    def test_ideal_backends_fingerprint_their_config(self):
        from repro.devices.backend import StatevectorBackend

        assert backend_fingerprint(StatevectorBackend()) == backend_fingerprint(
            StatevectorBackend()
        )
        assert backend_fingerprint(
            StatevectorBackend(max_branches=1)
        ) != backend_fingerprint(StatevectorBackend())

    def test_unknown_backend_has_no_fingerprint(self):
        class Opaque(Backend):
            name = "opaque"
            returns_probabilities = True

        assert backend_fingerprint(Opaque()) is None
        assert distribution_key(measured_bell(), Opaque()) is None


class TestDistributionKey:
    def test_exact_backends_are_cacheable(self):
        assert distribution_key(measured_bell(), get_backend("noisy:ibmqx4"))
        assert distribution_key(measured_bell(), get_backend("density_matrix"))

    def test_per_shot_backends_are_not(self):
        assert distribution_key(measured_bell(), get_backend("stabilizer")) is None
        assert (
            distribution_key(measured_bell(), get_backend("trajectory:ibmqx4"))
            is None
        )

    def test_circuit_fingerprint_participates(self):
        backend = get_backend("density_matrix")
        assert distribution_key(measured_bell(), backend) != distribution_key(
            measured_ghz(), backend
        )


class TestCrossCallReuse:
    def test_second_call_serves_from_cache(self):
        cache = DistributionCache()
        backend = get_backend("noisy:ibmqx4")
        first = execute(
            measured_bell(), backend, shots=512, seed=4, distribution_cache=cache
        )
        first.result()
        assert not first.cached
        assert cache.stats()["entries"] == 1
        second = execute(
            measured_bell(), backend, shots=512, seed=4, distribution_cache=cache
        )
        assert second.cached
        assert dict(second.counts()) == dict(first.counts())
        assert second.result().metadata["distribution_cache"] is True
        assert cache.stats()["hits"] == 1

    def test_cached_counts_match_dedicated_runs_across_seeds(self):
        cache = DistributionCache()
        backend = get_backend("density_matrix")
        execute(
            measured_ghz(), backend, shots=256, seed=1, distribution_cache=cache
        ).result()
        for seed in (2, 3, 4):
            cached = execute(
                measured_ghz(), backend, shots=256, seed=seed,
                distribution_cache=cache,
            ).counts()
            dedicated = backend.run(measured_ghz(), shots=256, seed=seed)
            assert dict(cached) == dict(dedicated.counts)

    def test_cached_chunked_job_matches_dedicated_chunked_run(self):
        cache = DistributionCache()
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        cached = execute(
            measured_bell(), backend, shots=1024, seed=9, chunk_shots=256,
            distribution_cache=cache,
        ).result()
        dedicated = execute(
            measured_bell(), backend, shots=1024, seed=9, chunk_shots=256
        ).result()
        assert dict(cached.counts) == dict(dedicated.counts)
        assert cached.counts.shots == 1024

    def test_cached_primary_sources_in_call_dedup(self):
        """A cache-hit primary still feeds this call's share/resample jobs."""
        cache = DistributionCache()
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=128, seed=1, distribution_cache=cache
        ).result()
        jobs = execute(
            [measured_bell()] * 3, backend, shots=128, seed=[5, 5, 6],
            distribution_cache=cache,
        )
        assert jobs.num_executed == 0
        assert jobs.num_cached == 1
        for seed, counts in zip([5, 5, 6], jobs.counts()):
            dedicated = backend.run(measured_bell(), shots=128, seed=seed)
            assert dict(counts) == dict(dedicated.counts)

    def test_cache_off_by_default(self):
        backend = get_backend("density_matrix")
        execute(measured_bell(), backend, shots=64, seed=1).result()
        job = execute(measured_bell(), backend, shots=64, seed=1)
        job.result()
        assert not job.cached

    def test_per_shot_backends_never_cached(self):
        cache = DistributionCache()
        backend = get_backend("stabilizer")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        assert len(cache) == 0
        follow_up = execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        )
        follow_up.result()
        assert not follow_up.cached

    def test_cached_jobs_cannot_cancel_and_cost_nothing(self):
        cache = DistributionCache()
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        job = execute(
            measured_bell(), backend, shots=64, seed=2, distribution_cache=cache
        )
        assert job.cancel() is False
        job.result()
        assert job.time_taken == 0.0

    def test_invalid_argument_rejected(self):
        from repro.exceptions import JobError

        with pytest.raises(JobError, match="distribution_cache"):
            execute(measured_bell(), "density_matrix", distribution_cache=object())


class TestInvalidation:
    def _warm(self):
        cache = DistributionCache()
        backend_a = get_backend("noisy:ibmqx4")
        backend_b = get_backend("density_matrix")
        for circuit in (measured_bell(), measured_ghz()):
            for backend in (backend_a, backend_b):
                execute(
                    circuit, backend, shots=64, seed=1, distribution_cache=cache
                ).result()
        assert len(cache) == 4
        return cache, backend_a, backend_b

    def test_invalidate_pair(self):
        cache, backend_a, _ = self._warm()
        assert cache.invalidate(measured_bell(), backend_a) == 1
        assert len(cache) == 3
        job = execute(
            measured_bell(), backend_a, shots=64, seed=1, distribution_cache=cache
        )
        job.result()
        assert not job.cached  # really re-simulated

    def test_invalidate_by_circuit(self):
        cache, _, _ = self._warm()
        assert cache.invalidate(circuit=measured_bell()) == 2
        assert len(cache) == 2

    def test_invalidate_by_backend(self):
        cache, _, backend_b = self._warm()
        assert cache.invalidate(backend=backend_b) == 2
        assert len(cache) == 2

    def test_invalidate_everything(self):
        cache, _, _ = self._warm()
        assert cache.invalidate() == 4
        assert len(cache) == 0

    def test_invalidate_unfingerprintable_backend_matches_nothing(self):
        class Opaque(Backend):
            name = "opaque"

        cache, _, _ = self._warm()
        assert cache.invalidate(backend=Opaque()) == 0
        assert len(cache) == 4

    def test_clear_preserves_stats(self):
        cache, backend_a, _ = self._warm()
        execute(
            measured_bell(), backend_a, shots=64, seed=2, distribution_cache=cache
        ).result()
        hits_before = cache.stats()["hits"]
        assert hits_before >= 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == hits_before


class TestBoundsAndEviction:
    def test_lru_eviction(self):
        cache = DistributionCache(maxsize=1)
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        execute(
            measured_ghz(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        assert len(cache) == 1  # bell evicted
        job = execute(
            measured_ghz(), backend, shots=64, seed=2, distribution_cache=cache
        )
        job.result()
        assert job.cached

    def test_maxsize_zero_disables_storage(self):
        cache = DistributionCache(maxsize=0)
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            DistributionCache(maxsize=-1)

    def test_repr_mentions_counters(self):
        cache = DistributionCache()
        assert "entries=0" in repr(cache)


class TestCompletionTimePopulation:
    """The entry appears when the job *completes*, not when it is collected,
    so overlapping ``execute()`` calls never simulate the same pair twice."""

    def _wait_for_entry(self, cache, timeout=30.0):
        deadline = time.monotonic() + timeout
        while len(cache) == 0:
            assert time.monotonic() < deadline, "entry never published"
            time.sleep(0.005)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_overlapping_calls_share_one_simulation(self, executor, tmp_path):
        cache = DistributionCache()
        backend = SlowTalliedBackend(tmp_path / "tally", delay=0.05)
        circuit = measured_bell()

        first = execute(
            circuit, backend, shots=512, seed=1, executor=executor,
            max_workers=2, distribution_cache=cache,
        )
        # Nobody collects `first`; the done-callback alone must publish.
        self._wait_for_entry(cache)
        second = execute(
            circuit, backend, shots=512, seed=2, executor=executor,
            max_workers=2, distribution_cache=cache,
        )
        assert second.cached  # observed the hit the moment the job finished
        second_counts = second.counts()
        first_counts = first.counts()
        # Exactly one simulation happened across both calls, wherever the
        # executor ran it.
        assert backend.runs() == 1
        assert cache.stats()["hits"] == 1

        dedicated = DensityMatrixBackend()
        assert dict(first_counts) == dict(
            dedicated.run(circuit, shots=512, seed=1).counts
        )
        assert dict(second_counts) == dict(
            dedicated.run(circuit, shots=512, seed=2).counts
        )

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_chunked_job_publishes_full_distribution_at_completion(
        self, executor, tmp_path
    ):
        """A chunked primary's entry (published from its first chunk) serves
        later calls with the complete distribution."""
        cache = DistributionCache()
        backend = SlowTalliedBackend(tmp_path / "tally", delay=0.01)
        circuit = measured_bell()

        first = execute(
            circuit, backend, shots=512, seed=1, chunk_shots=128,
            executor=executor, max_workers=2, distribution_cache=cache,
        )
        self._wait_for_entry(cache)
        second = execute(
            circuit, backend, shots=512, seed=7, executor=executor,
            max_workers=2, distribution_cache=cache,
        )
        assert second.cached
        dedicated = DensityMatrixBackend()
        assert dict(second.counts()) == dict(
            dedicated.run(circuit, shots=512, seed=7).counts
        )
        first.result()

    def test_serial_executor_publishes_during_execute(self, tmp_path):
        """The serial executor runs inline: the entry is visible as soon as
        execute() returns, before any collection."""
        cache = DistributionCache()
        backend = SlowTalliedBackend(tmp_path / "tally", delay=0.0)
        job = execute(
            measured_bell(), backend, shots=128, seed=1, executor="serial",
            distribution_cache=cache,
        )
        assert len(cache) == 1
        job.result()
        assert backend.runs() == 1

    def test_entry_visible_once_result_returns(self, tmp_path):
        """Whatever the callback timing, result() returning guarantees the
        entry is published (callers compare stats right after collecting)."""
        for _ in range(20):
            cache = DistributionCache()
            backend = SlowTalliedBackend(tmp_path / "tally", delay=0.0)
            execute(
                measured_bell(), backend, shots=64, seed=1, executor="thread",
                distribution_cache=cache,
            ).result()
            assert len(cache) == 1


class TestDiskTierIntegration:
    def test_invalidate_removes_disk_entries(self, tmp_path):
        cache = DistributionCache(cache_dir=tmp_path)
        backend = get_backend("density_matrix")
        execute(
            measured_bell(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        execute(
            measured_ghz(), backend, shots=64, seed=1, distribution_cache=cache
        ).result()
        assert cache.invalidate(circuit=measured_bell()) == 1
        # A cold cache over the same directory proves the disk copy is gone.
        fresh = DistributionCache(cache_dir=tmp_path)
        miss = execute(
            measured_bell(), backend, shots=64, seed=2, distribution_cache=fresh
        )
        miss.result()
        assert not miss.cached
        hit = execute(
            measured_ghz(), backend, shots=64, seed=2, distribution_cache=fresh
        )
        hit.result()
        assert hit.cached
