"""Cross-process cost-profile persistence: the scheduler's warm-start claim.

A cold process learns per-shot costs from its own chunks; with a
``REPRO_CACHE_DIR`` attached those profiles persist, and a *warm* process
must know the measured per-shot cost — and plan data-driven chunk sizes —
before its first job runs.  Driven through the shared
:mod:`repro.runtime.harness` subprocess sweep driver (the only honest way
to test cross-process behaviour), on the trajectory engine so the per-shot
path is the one profiled.
"""

import pytest

from repro.runtime.harness import run_sweep_process


@pytest.fixture(scope="module")
def profile_runs(tmp_path_factory):
    """A cold and a warm trajectory sweep sharing one cache directory."""
    cache_dir = tmp_path_factory.mktemp("cache")
    kwargs = dict(
        cache_dir=cache_dir,
        variants=("bell-entangled",),
        shots=96,
        repeats=2,
        backend="trajectory:ibmqx4",
    )
    cold, _ = run_sweep_process(**kwargs)
    warm, _ = run_sweep_process(**kwargs)
    return {"cold": cold, "warm": warm}


class TestProfilePersistence:
    def test_cold_process_starts_ignorant(self, profile_runs):
        assert profile_runs["cold"]["profile"]["warm_estimate"] is None

    def test_cold_process_learns(self, profile_runs):
        cold = profile_runs["cold"]["profile"]
        assert cold["per_shot_after"] is not None
        assert cold["per_shot_after"] > 0
        assert cold["samples_after"] >= 1

    def test_warm_process_knows_costs_before_first_job(self, profile_runs):
        """The acceptance criterion: a fresh interpreter schedules from
        persisted measurements on its very first call."""
        warm = profile_runs["warm"]["profile"]
        assert warm["warm_estimate"] is not None
        assert warm["warm_estimate"] > 0
        # The pre-run adaptive plan is data-driven, not the cold bootstrap.
        cold_plan = profile_runs["cold"]["profile"]["warm_plan"]
        assert warm["warm_plan"] is None or warm["warm_plan"] >= 1
        assert cold_plan == 24  # bootstrap: 96 shots / width 4

    def test_warm_counts_bit_identical(self, profile_runs):
        """Profiles steer scheduling, never counts: both processes seeded
        identically must agree bit-for-bit."""
        assert profile_runs["warm"]["counts"] == profile_runs["cold"]["counts"]

    def test_profiles_survive_more_processes(self, profile_runs, tmp_path):
        """Samples accumulate: the warm process folds its own observations
        into the persisted EWMA rather than starting over."""
        warm = profile_runs["warm"]["profile"]
        assert warm["samples_after"] >= profile_runs["cold"]["profile"][
            "samples_after"
        ]


def test_memory_only_process_reports_no_estimate(tmp_path):
    """Without a cache dir nothing persists — warm_estimate stays None."""
    report, _ = run_sweep_process(
        cache_dir=None,
        variants=("bell-entangled",),
        shots=48,
        repeats=1,
        backend="trajectory:ibmqx4",
    )
    assert report["profile"]["warm_estimate"] is None
    assert report["profile"]["per_shot_after"] is not None
