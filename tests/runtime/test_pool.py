"""Tests for the shared executor registry and the serial executor."""

import pytest

from repro.exceptions import JobError
from repro.runtime.pool import (
    EXECUTOR_KINDS,
    SerialExecutor,
    default_executor_kind,
    default_max_workers,
    get_executor,
    pool_stats,
    shutdown_executors,
)


class TestSerialExecutor:
    def test_runs_inline_and_returns_done_future(self):
        calls = []
        future = SerialExecutor().submit(lambda x: calls.append(x) or x * 2, 21)
        assert calls == [21]  # ran before submit returned
        assert future.done()
        assert future.result() == 42

    def test_exception_captured_not_raised(self):
        def boom():
            raise RuntimeError("inline failure")

        future = SerialExecutor().submit(boom)
        assert future.done()
        with pytest.raises(RuntimeError, match="inline failure"):
            future.result()

    def test_submission_order_is_execution_order(self):
        order = []
        pool = SerialExecutor()
        for i in range(5):
            pool.submit(order.append, i)
        assert order == list(range(5))


class TestExecutorRegistry:
    def test_same_configuration_reuses_one_pool(self):
        first = get_executor("thread", 2)
        before = pool_stats()
        second = get_executor("thread", 2)
        after = pool_stats()
        assert second is first
        assert after["created"] == before["created"]
        assert after["reused"] == before["reused"] + 1

    def test_distinct_widths_get_distinct_pools(self):
        assert get_executor("thread", 2) is not get_executor("thread", 3)

    def test_serial_is_a_singleton(self):
        assert get_executor("serial") is get_executor("serial", 8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown executor kind"):
            get_executor("greenlet")

    def test_invalid_width_rejected(self):
        with pytest.raises(JobError, match="max_workers"):
            get_executor("thread", 0)

    def test_shutdown_clears_and_rebuilds_lazily(self):
        pool = get_executor("thread", 2)
        shutdown_executors()
        assert pool_stats()["active"] == 0
        rebuilt = get_executor("thread", 2)
        assert rebuilt is not pool
        rebuilt.submit(lambda: None).result()  # fresh pool actually works

    def test_stats_shape(self):
        get_executor("serial")
        stats = pool_stats()
        assert set(stats) == {"active", "created", "reused", "rebuilds", "pools"}
        assert ("serial", None) in stats["pools"]


class TestDefaultKind:
    def test_fallback_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_kind() == "thread"

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_env_var_selects_kind(self, monkeypatch, kind):
        monkeypatch.setenv("REPRO_EXECUTOR", kind)
        assert default_executor_kind() == kind

    def test_env_var_is_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "  Process ")
        assert default_executor_kind() == "process"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum")
        with pytest.raises(JobError, match="REPRO_EXECUTOR"):
            default_executor_kind()

    def test_default_width_positive(self):
        assert default_max_workers() >= 1
