"""Cross-process persistent-cache tests: the determinism-first harness.

The tentpole claim of the persistent cache store: a *second process*
running the same sweep against the same ``REPRO_CACHE_DIR`` performs zero
transpiles and zero exact-distribution simulations, and its counts are
bit-identical to a cache-disabled run.  These tests drive real
``subprocess`` interpreters (the only honest way to test cross-process
behaviour) through the shared :mod:`repro.runtime.harness` sweep driver —
the same one ``benchmarks/bench_runtime.py`` times.
"""

import pytest

from repro.runtime.harness import run_sweep_process


def run_driver(cache_dir=None):
    """Run the shared sweep driver; return its JSON report."""
    report, _elapsed = run_sweep_process(
        cache_dir=cache_dir,
        variants=("bell-entangled", "ghz-pairwise"),
        shots=1024,
        repeats=3,
    )
    return report


@pytest.fixture(scope="module")
def sweep_runs(tmp_path_factory):
    """One cache-disabled run plus two runs sharing a cache directory."""
    cache_dir = tmp_path_factory.mktemp("cache")
    return {
        "uncached": run_driver(cache_dir=None),
        "cold": run_driver(cache_dir=cache_dir),
        "warm": run_driver(cache_dir=cache_dir),
        "cache_dir": cache_dir,
    }


class TestCrossProcessDeterminism:
    def test_counts_bit_identical_across_all_three_processes(self, sweep_runs):
        """Disk-cache-served counts == cold counts == cache-disabled counts."""
        assert sweep_runs["cold"]["counts"] == sweep_runs["uncached"]["counts"]
        assert sweep_runs["warm"]["counts"] == sweep_runs["uncached"]["counts"]

    def test_cold_process_simulates_and_populates(self, sweep_runs):
        cold = sweep_runs["cold"]
        assert cold["executed"] == 2  # one per distinct circuit
        assert cold["cached"] == 0
        assert cold["transpile"]["misses"] == 2
        assert cold["transpile"]["disk"]["stores"] == 2
        assert cold["distribution"]["disk"]["stores"] == 2

    def test_warm_process_reports_zero_misses_and_zero_simulations(
        self, sweep_runs
    ):
        """The acceptance criterion: zero transpiles, zero simulations."""
        warm = sweep_runs["warm"]
        assert warm["executed"] == 0
        assert warm["cached"] == 2  # primaries served from the disk tier
        assert warm["transpile"]["misses"] == 0
        assert warm["transpile"]["hits"] == 2  # the explicit prepare() calls
        assert warm["distribution"]["misses"] == 0
        assert warm["distribution"]["hits"] == 2
        assert warm["transpile"]["disk"]["hits"] == 2
        assert warm["distribution"]["disk"]["hits"] == 2

    def test_cache_directory_layout(self, sweep_runs):
        cache_dir = sweep_runs["cache_dir"]
        transpile = list((cache_dir / "transpile").glob("*.entry"))
        distribution = list((cache_dir / "distribution").glob("*.entry"))
        assert len(transpile) == 2
        assert len(distribution) == 2

    def test_uncached_process_touched_no_cache_dir(self, sweep_runs):
        uncached = sweep_runs["uncached"]
        assert uncached["transpile"]["disk"] is None
        assert uncached["distribution"]["disk"] is None
        assert uncached["executed"] == 2


class TestCorruptedCacheDirStaysCorrect:
    def test_corrupted_entries_fall_back_to_simulation_with_same_counts(
        self, tmp_path
    ):
        """Flip bytes in every persisted entry: the next process re-simulates
        (misses, no crash) and still produces identical counts."""
        cache_dir = tmp_path / "cache"
        cold = run_driver(cache_dir=cache_dir)
        for entry in cache_dir.rglob("*.entry"):
            blob = bytearray(entry.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            entry.write_bytes(bytes(blob))
        recovered = run_driver(cache_dir=cache_dir)
        assert recovered["counts"] == cold["counts"]
        assert recovered["executed"] == 2  # really re-simulated
        assert recovered["transpile"]["misses"] == 2
        assert recovered["distribution"]["misses"] == 2

    def test_disk_hit_equals_memory_hit_equals_fresh_simulation(self, tmp_path):
        """The three serving paths agree bit-for-bit in one process."""
        from repro.circuits import library
        from repro.runtime import DistributionCache, execute, get_backend

        circuit = library.bell_pair()
        circuit.measure_all()
        backend = get_backend("noisy:ibmqx4")

        fresh = backend.run(circuit, shots=2048, seed=99)

        warm = DistributionCache(cache_dir=tmp_path)
        execute(
            circuit, backend, shots=64, seed=1, distribution_cache=warm
        ).result()
        memory_hit = execute(
            circuit, backend, shots=2048, seed=99, distribution_cache=warm
        )
        # A cold cache over the same directory: memory misses, disk hits.
        disk_only = DistributionCache(cache_dir=tmp_path)
        disk_hit = execute(
            circuit, backend, shots=2048, seed=99, distribution_cache=disk_only
        )

        assert memory_hit.cached and disk_hit.cached
        assert dict(memory_hit.counts()) == dict(fresh.counts)
        assert dict(disk_hit.counts()) == dict(fresh.counts)
        assert disk_only.stats()["disk"]["hits"] == 1
