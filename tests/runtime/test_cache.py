"""Tests for the fingerprint-keyed transpile cache."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import NoisyDeviceBackend, TrajectoryDeviceBackend
from repro.devices.generic import linear_device
from repro.runtime.cache import (
    TranspileCache,
    transpile_cached,
    transpile_key,
)
from repro.transpiler.layout import Layout


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


class TestFingerprint:
    def test_identical_rebuild_shares_fingerprint(self):
        assert measured_bell().fingerprint() == measured_bell().fingerprint()

    def test_name_does_not_participate(self):
        a = QuantumCircuit(2, 2, name="a")
        a.h(0).cx(0, 1).measure([0, 1], [0, 1])
        b = QuantumCircuit(2, 2, name="b")
        b.h(0).cx(0, 1).measure([0, 1], [0, 1])
        assert a.fingerprint() == b.fingerprint()

    def test_operations_participate(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.x(0)
        assert a.fingerprint() != b.fingerprint()

    def test_parameters_participate(self):
        a = QuantumCircuit(1)
        a.rx(0.5, 0)
        b = QuantumCircuit(1)
        b.rx(0.25, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_bit_counts_participate(self):
        assert QuantumCircuit(2).fingerprint() != QuantumCircuit(3).fingerprint()

    def test_operand_order_participates(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_unitary_payload_participates(self):
        import numpy as np

        a = QuantumCircuit(1)
        a.unitary(np.eye(2), [0])
        b = QuantumCircuit(1)
        b.unitary(np.array([[0, 1], [1, 0]], dtype=complex), [0])
        assert a.fingerprint() != b.fingerprint()

    def test_condition_participates(self):
        a = QuantumCircuit(1, 1)
        a.x(0, condition=(0, 1))
        b = QuantumCircuit(1, 1)
        b.x(0)
        assert a.fingerprint() != b.fingerprint()


class TestTranspileKey:
    def test_key_components(self, ibmqx4_device):
        from repro.runtime.cache import device_fingerprint

        circuit = measured_bell()
        layout = Layout([1, 2], 5)
        key = transpile_key(circuit, ibmqx4_device, layout, True)
        assert key == (
            circuit.fingerprint(),
            device_fingerprint(ibmqx4_device),
            (1, 2),
            True,
        )

    def test_same_named_devices_never_collide(self, ibmqx4_device):
        """Keying is by device content, not name: impostors miss."""
        cache = TranspileCache()
        NoisyDeviceBackend(ibmqx4_device, cache=cache).prepare(measured_bell())
        impostor = linear_device(5, name="ibmqx4")
        prepared = NoisyDeviceBackend(impostor, cache=cache).prepare(measured_bell())
        assert cache.misses == 2
        for inst in prepared.data:
            if inst.name == "cx":
                assert impostor.coupling_map.supports(*inst.qubits)

    def test_calibration_participates_in_device_fingerprint(self):
        from repro.runtime.cache import device_fingerprint

        a = linear_device(5)
        b = linear_device(5, cx_error=0.4)
        assert a.name == b.name
        assert device_fingerprint(a) != device_fingerprint(b)
        # Content-identical rebuilds share the fingerprint (cross-call hits).
        assert device_fingerprint(linear_device(5)) == device_fingerprint(a)

    def test_noise_scale_shares_key_across_backends(self, ibmqx4_device):
        """Lowering never sees the noise scale: a sweep hits one entry."""
        cache = TranspileCache()
        for scale in (0.5, 1.0, 2.0):
            NoisyDeviceBackend(ibmqx4_device, noise_scale=scale, cache=cache).prepare(
                measured_bell()
            )
        assert cache.misses == 1
        assert cache.hits == 2


class TestTranspileCache:
    def test_hit_returns_same_object(self, ibmqx4_device):
        cache = TranspileCache()
        circuit = measured_bell()
        first = cache.transpile(circuit, ibmqx4_device)
        second = cache.transpile(measured_bell(), ibmqx4_device)
        assert first is second
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
        }

    def test_lru_eviction(self, ibmqx4_device):
        cache = TranspileCache(maxsize=1)
        cache.transpile(measured_bell(), ibmqx4_device)
        ghz = library.ghz_state(3)
        ghz.measure_all()
        cache.transpile(ghz, ibmqx4_device)
        assert len(cache) == 1
        # The bell entry was evicted: transpiling it again misses.
        cache.transpile(measured_bell(), ibmqx4_device)
        assert cache.misses == 3

    def test_maxsize_zero_disables_storage(self, ibmqx4_device):
        cache = TranspileCache(maxsize=0)
        cache.transpile(measured_bell(), ibmqx4_device)
        cache.transpile(measured_bell(), ibmqx4_device)
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 2

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            TranspileCache(maxsize=-1)

    def test_clear_preserves_stats(self, ibmqx4_device):
        cache = TranspileCache()
        cache.transpile(measured_bell(), ibmqx4_device)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_transpile_cached_uses_explicit_cache(self, ibmqx4_device):
        cache = TranspileCache()
        transpile_cached(measured_bell(), ibmqx4_device, cache=cache)
        assert len(cache) == 1


class TestBackendCacheWiring:
    def test_cache_hits_never_change_results(self, ibmqx4_device):
        cache = TranspileCache()
        backend = NoisyDeviceBackend(ibmqx4_device, cache=cache)
        cold = backend.run(measured_bell(), shots=1500, seed=17)
        assert cache.misses == 1
        warm = backend.run(measured_bell(), shots=1500, seed=17)
        assert cache.hits == 1
        assert dict(cold.counts) == dict(warm.counts)
        assert cold.probabilities == warm.probabilities

    def test_cache_false_disables_caching(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device, cache=False)
        a = backend.run(measured_bell(), shots=500, seed=1)
        b = backend.run(measured_bell(), shots=500, seed=1)
        assert dict(a.counts) == dict(b.counts)

    def test_trajectory_backend_shares_prepare(self):
        device = linear_device(3)
        cache = TranspileCache()
        backend = TrajectoryDeviceBackend(device, cache=cache)
        result = backend.run(measured_bell(), shots=50, seed=2)
        # The shared DeviceBackend.run stamps trajectory results too.
        assert result.metadata["device"] == device.name
        assert "transpiled_ops" in result.metadata
        assert len(cache) == 1

    def test_pinned_layout_participates_in_key(self, ibmqx4_device):
        cache = TranspileCache()
        free = NoisyDeviceBackend(ibmqx4_device, cache=cache)
        pinned = NoisyDeviceBackend(
            ibmqx4_device, layout=Layout([1, 2], 5), cache=cache
        )
        free.prepare(measured_bell())
        pinned.prepare(measured_bell())
        assert cache.misses == 2
