"""Tests for the fingerprint-keyed transpile cache."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import NoisyDeviceBackend, TrajectoryDeviceBackend
from repro.devices.generic import linear_device
from repro.runtime.cache import (
    TranspileCache,
    transpile_cached,
    transpile_key,
)
from repro.transpiler.layout import Layout


def measured_bell():
    qc = library.bell_pair()
    qc.measure_all()
    return qc


class TestFingerprint:
    def test_identical_rebuild_shares_fingerprint(self):
        assert measured_bell().fingerprint() == measured_bell().fingerprint()

    def test_name_does_not_participate(self):
        a = QuantumCircuit(2, 2, name="a")
        a.h(0).cx(0, 1).measure([0, 1], [0, 1])
        b = QuantumCircuit(2, 2, name="b")
        b.h(0).cx(0, 1).measure([0, 1], [0, 1])
        assert a.fingerprint() == b.fingerprint()

    def test_operations_participate(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.x(0)
        assert a.fingerprint() != b.fingerprint()

    def test_parameters_participate(self):
        a = QuantumCircuit(1)
        a.rx(0.5, 0)
        b = QuantumCircuit(1)
        b.rx(0.25, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_bit_counts_participate(self):
        assert QuantumCircuit(2).fingerprint() != QuantumCircuit(3).fingerprint()

    def test_operand_order_participates(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_unitary_payload_participates(self):
        import numpy as np

        a = QuantumCircuit(1)
        a.unitary(np.eye(2), [0])
        b = QuantumCircuit(1)
        b.unitary(np.array([[0, 1], [1, 0]], dtype=complex), [0])
        assert a.fingerprint() != b.fingerprint()

    def test_condition_participates(self):
        a = QuantumCircuit(1, 1)
        a.x(0, condition=(0, 1))
        b = QuantumCircuit(1, 1)
        b.x(0)
        assert a.fingerprint() != b.fingerprint()


class TestFingerprintMemo:
    """The fingerprint is memoised (hashed once per execute() call instead
    of once each for planning, distribution keying and transpile keying) —
    and every mutation path must invalidate the memo, or a stale hash
    would silently poison the runtime caches."""

    def test_repeat_calls_return_the_memo(self):
        qc = measured_bell()
        assert qc.fingerprint() is qc.fingerprint()

    def test_builder_mutation_invalidates(self):
        qc = measured_bell()
        before = qc.fingerprint()
        qc.x(0)
        assert qc.fingerprint() != before

    def test_direct_data_append_invalidates(self):
        a, b = measured_bell(), measured_bell()
        a.fingerprint()
        a.data.append(b.data[0])
        b.data.append(b.data[0])
        assert a.fingerprint() == b.fingerprint()

    def test_data_reassignment_invalidates(self):
        qc = measured_bell()
        before = qc.fingerprint()
        qc.data = qc.data[:-1]
        assert qc.fingerprint() != before

    def test_slice_assignment_invalidates(self):
        qc = measured_bell()
        before = qc.fingerprint()
        qc.data[0] = qc.data[1]
        assert qc.fingerprint() != before

    def test_pop_and_delete_invalidate(self):
        qc = measured_bell()
        before = qc.fingerprint()
        qc.data.pop()
        mid = qc.fingerprint()
        assert mid != before
        del qc.data[0]
        assert qc.fingerprint() != mid

    def test_add_register_invalidates(self):
        qc = measured_bell()
        before = qc.fingerprint()
        qc.add_qubits(1)
        assert qc.fingerprint() != before

    def test_compose_invalidates(self):
        qc = library.bell_pair()
        before = qc.fingerprint()
        qc.compose(library.bell_pair())
        assert qc.fingerprint() != before

    def test_copy_memo_is_independent(self):
        qc = measured_bell()
        original = qc.fingerprint()
        clone = qc.copy()
        assert clone.fingerprint() == original
        clone.x(0)
        assert clone.fingerprint() != original
        assert qc.fingerprint() == original

    def test_memoised_circuit_survives_pickle(self):
        import pickle

        qc = measured_bell()
        digest = qc.fingerprint()
        clone = pickle.loads(pickle.dumps(qc))
        assert clone.fingerprint() == digest
        clone.x(0)  # tracking still live after unpickling
        assert clone.fingerprint() != digest

    def test_mutation_racing_a_hash_never_pins_a_stale_memo(self):
        """A mutation landing while another thread is mid-hash must not let
        that thread install its pre-mutation digest (generation guard)."""
        import threading

        expected = measured_bell()
        expected.x(0)
        for _ in range(30):
            qc = measured_bell()
            stop = threading.Event()

            def hash_loop():
                while not stop.is_set():
                    qc.fingerprint()

            worker = threading.Thread(target=hash_loop)
            worker.start()
            qc.x(0)
            stop.set()
            worker.join()
            assert qc.fingerprint() == expected.fingerprint()


class TestTranspileKey:
    def test_key_components(self, ibmqx4_device):
        from repro.runtime.cache import device_fingerprint

        circuit = measured_bell()
        layout = Layout([1, 2], 5)
        key = transpile_key(circuit, ibmqx4_device, layout, True)
        assert key == (
            circuit.fingerprint(),
            device_fingerprint(ibmqx4_device),
            (1, 2),
            True,
        )

    def test_same_named_devices_never_collide(self, ibmqx4_device):
        """Keying is by device content, not name: impostors miss."""
        cache = TranspileCache()
        NoisyDeviceBackend(ibmqx4_device, cache=cache).prepare(measured_bell())
        impostor = linear_device(5, name="ibmqx4")
        prepared = NoisyDeviceBackend(impostor, cache=cache).prepare(measured_bell())
        assert cache.misses == 2
        for inst in prepared.data:
            if inst.name == "cx":
                assert impostor.coupling_map.supports(*inst.qubits)

    def test_calibration_participates_in_device_fingerprint(self):
        from repro.runtime.cache import device_fingerprint

        a = linear_device(5)
        b = linear_device(5, cx_error=0.4)
        assert a.name == b.name
        assert device_fingerprint(a) != device_fingerprint(b)
        # Content-identical rebuilds share the fingerprint (cross-call hits).
        assert device_fingerprint(linear_device(5)) == device_fingerprint(a)

    def test_noise_scale_shares_key_across_backends(self, ibmqx4_device):
        """Lowering never sees the noise scale: a sweep hits one entry."""
        cache = TranspileCache()
        for scale in (0.5, 1.0, 2.0):
            NoisyDeviceBackend(ibmqx4_device, noise_scale=scale, cache=cache).prepare(
                measured_bell()
            )
        assert cache.misses == 1
        assert cache.hits == 2


class TestTranspileCache:
    def test_hit_returns_same_object(self, ibmqx4_device):
        cache = TranspileCache()
        circuit = measured_bell()
        first = cache.transpile(circuit, ibmqx4_device)
        second = cache.transpile(measured_bell(), ibmqx4_device)
        assert first is second
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        # Unified-store shape: per-tier detail rides along (no disk tier
        # unless a cache_dir was given).
        assert stats["memory"]["hits"] == 1
        assert stats["disk"] is None

    def test_lru_eviction(self, ibmqx4_device):
        cache = TranspileCache(maxsize=1)
        cache.transpile(measured_bell(), ibmqx4_device)
        ghz = library.ghz_state(3)
        ghz.measure_all()
        cache.transpile(ghz, ibmqx4_device)
        assert len(cache) == 1
        # The bell entry was evicted: transpiling it again misses.
        cache.transpile(measured_bell(), ibmqx4_device)
        assert cache.misses == 3

    def test_maxsize_zero_disables_storage(self, ibmqx4_device):
        cache = TranspileCache(maxsize=0)
        cache.transpile(measured_bell(), ibmqx4_device)
        cache.transpile(measured_bell(), ibmqx4_device)
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 2

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            TranspileCache(maxsize=-1)

    def test_clear_preserves_stats(self, ibmqx4_device):
        cache = TranspileCache()
        cache.transpile(measured_bell(), ibmqx4_device)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_transpile_cached_uses_explicit_cache(self, ibmqx4_device):
        cache = TranspileCache()
        transpile_cached(measured_bell(), ibmqx4_device, cache=cache)
        assert len(cache) == 1


class TestBackendCacheWiring:
    def test_cache_hits_never_change_results(self, ibmqx4_device):
        cache = TranspileCache()
        backend = NoisyDeviceBackend(ibmqx4_device, cache=cache)
        cold = backend.run(measured_bell(), shots=1500, seed=17)
        assert cache.misses == 1
        warm = backend.run(measured_bell(), shots=1500, seed=17)
        assert cache.hits == 1
        assert dict(cold.counts) == dict(warm.counts)
        assert cold.probabilities == warm.probabilities

    def test_cache_false_disables_caching(self, ibmqx4_device):
        backend = NoisyDeviceBackend(ibmqx4_device, cache=False)
        a = backend.run(measured_bell(), shots=500, seed=1)
        b = backend.run(measured_bell(), shots=500, seed=1)
        assert dict(a.counts) == dict(b.counts)

    def test_trajectory_backend_shares_prepare(self):
        device = linear_device(3)
        cache = TranspileCache()
        backend = TrajectoryDeviceBackend(device, cache=cache)
        result = backend.run(measured_bell(), shots=50, seed=2)
        # The shared DeviceBackend.run stamps trajectory results too.
        assert result.metadata["device"] == device.name
        assert "transpiled_ops" in result.metadata
        assert len(cache) == 1

    def test_pinned_layout_participates_in_key(self, ibmqx4_device):
        cache = TranspileCache()
        free = NoisyDeviceBackend(ibmqx4_device, cache=cache)
        pinned = NoisyDeviceBackend(
            ibmqx4_device, layout=Layout([1, 2], 5), cache=cache
        )
        free.prepare(measured_bell())
        pinned.prepare(measured_bell())
        assert cache.misses == 2


class TestDiskBackedTranspileCache:
    def test_fresh_cache_serves_persisted_transpile(self, ibmqx4_device, tmp_path):
        """A new cache instance (i.e. a new process) over the same directory
        skips the lowering and returns an identical circuit."""
        warm = TranspileCache(cache_dir=tmp_path)
        lowered = NoisyDeviceBackend(ibmqx4_device, cache=warm).prepare(
            measured_bell()
        )
        assert warm.misses == 1

        cold = TranspileCache(cache_dir=tmp_path)
        served = NoisyDeviceBackend(ibmqx4_device, cache=cold).prepare(
            measured_bell()
        )
        assert cold.hits == 1
        assert cold.misses == 0
        assert cold.stats()["disk"]["hits"] == 1
        assert served.fingerprint() == lowered.fingerprint()

    def test_disk_served_circuit_runs_identically(self, ibmqx4_device, tmp_path):
        warm_backend = NoisyDeviceBackend(
            ibmqx4_device, cache=TranspileCache(cache_dir=tmp_path)
        )
        direct = warm_backend.run(measured_bell(), shots=1024, seed=3)
        disk_backend = NoisyDeviceBackend(
            ibmqx4_device, cache=TranspileCache(cache_dir=tmp_path)
        )
        from_disk = disk_backend.run(measured_bell(), shots=1024, seed=3)
        assert dict(direct.counts) == dict(from_disk.counts)
        assert direct.probabilities == from_disk.probabilities
