"""End-to-end integration tests across the whole stack.

Each test exercises the full pipeline a downstream user would run:
build program -> inject assertions -> (transpile ->) execute -> filter.
"""

import math

import pytest

from repro import (
    AssertionInjector,
    NoisyDeviceBackend,
    QuantumCircuit,
    StabilizerBackend,
    StatevectorBackend,
    ibmqx4,
    library,
    postselect_passing,
)
from repro.core import evaluate_assertions
from repro.core.filtering import result_error_rate


class TestIdealPipeline:
    def test_bell_with_entanglement_assertion(self):
        injector = AssertionInjector(library.bell_pair())
        injector.assert_entangled([0, 1])
        injector.measure_program()
        result = StatevectorBackend().run(injector.circuit, shots=1000, seed=1)
        filtered = postselect_passing(result.counts, injector.records)
        assert set(filtered) == {"00", "11"}
        assert filtered.shots == 1000  # nothing discarded ideally

    def test_grover_with_mid_circuit_assertions(self):
        """Assert the uniform superposition after the H layer, then continue
        with the Grover iterations in the same execution."""
        stage1 = library.uniform_superposition(2)
        injector = AssertionInjector(stage1)
        injector.assert_uniform([0, 1])
        # Continue: one Grover iteration marking |11>.
        continuation = QuantumCircuit(2)
        continuation.cz(0, 1)
        for q in range(2):
            continuation.h(q)
            continuation.x(q)
        continuation.cz(0, 1)
        for q in range(2):
            continuation.x(q)
            continuation.h(q)
        injector.apply(continuation)
        injector.measure_program()
        result = StatevectorBackend().run(injector.circuit, shots=600, seed=2)
        report = evaluate_assertions(result.counts, injector.records)
        assert report.pass_rate == pytest.approx(1.0)
        assert report.passing.most_frequent() == "11"

    def test_buggy_grover_caught_by_assertion(self):
        """An X-for-H bug in the initial layer trips the |+> assertion."""
        buggy = QuantumCircuit(2)
        buggy.h(0)
        buggy.x(1)  # should have been h(1)
        injector = AssertionInjector(buggy)
        injector.assert_uniform([0, 1])
        injector.measure_program()
        result = StatevectorBackend().run(injector.circuit, shots=2000, seed=3)
        report = evaluate_assertions(result.counts, injector.records)
        # The bugged qubit's assertion errs ~50% of the time; the healthy
        # qubit's assertion never fires.
        rates = list(report.per_assertion_error_rate.values())
        assert rates[0] == pytest.approx(0.0, abs=1e-9)
        assert rates[1] == pytest.approx(0.5, abs=0.05)
        assert report.discard_fraction() > 0.3

    def test_teleportation_with_classical_assertion(self):
        """Assert Bob's qubit teleported |1> correctly, via the circuit."""
        prep = QuantumCircuit(1)
        prep.x(0)
        program = library.teleportation(state_prep=prep)
        injector = AssertionInjector(program)
        injector.assert_classical(2, 1)  # Bob must hold |1>
        result = StatevectorBackend().run(injector.circuit, shots=400, seed=4)
        report = evaluate_assertions(
            result.counts.marginal(injector.records[0].clbits),
            [
                # Re-key the record to the marginalised single-bit histogram.
                type(injector.records[0])(
                    kind=injector.records[0].kind,
                    qubits=injector.records[0].qubits,
                    ancillas=injector.records[0].ancillas,
                    clbits=(0,),
                    expected=injector.records[0].expected,
                    label=injector.records[0].label,
                )
            ],
        )
        assert report.pass_rate == pytest.approx(1.0)


class TestStabilizerPipeline:
    def test_large_ghz_assertion_pipeline(self):
        injector = AssertionInjector(library.ghz_state(48))
        injector.assert_entangled(list(range(48)), mode="pairwise")
        injector.measure_program()
        result = StabilizerBackend().run(injector.circuit, shots=64, seed=5)
        report = evaluate_assertions(result.counts, injector.records)
        assert report.pass_rate == pytest.approx(1.0)
        assert set(report.passing) == {"0" * 48, "1" * 48}

    def test_bit_flip_bug_detected_at_scale(self):
        program = library.ghz_state(16)
        program.x(7)  # injected bug
        injector = AssertionInjector(program)
        injector.assert_entangled(list(range(16)), mode="pairwise")
        injector.measure_program()
        result = StabilizerBackend().run(injector.circuit, shots=64, seed=6)
        report = evaluate_assertions(result.counts, injector.records)
        assert report.pass_rate == pytest.approx(0.0)


class TestNoisyPipeline:
    def test_noisy_bell_filtering_improves_error_rate(self, ibmqx4_device):
        injector = AssertionInjector(library.bell_pair())
        injector.assert_entangled([0, 1])
        result_clbits = injector.measure_program()
        backend = NoisyDeviceBackend(ibmqx4_device)
        result = backend.run(injector.circuit, shots=8192, seed=7)
        raw = result_error_rate(
            result.counts.marginal(result_clbits), ["00", "11"]
        )
        report = evaluate_assertions(result.counts, injector.records)
        filtered = result_error_rate(report.passing, ["00", "11"])
        assert filtered < raw

    def test_transpiled_assertion_survives_lowering(self, ibmqx4_device):
        """The assertion semantics must survive basis/layout/direction
        rewriting: with noise off, filtering discards nothing."""
        injector = AssertionInjector(library.bell_pair())
        injector.assert_entangled([0, 1])
        injector.measure_program()
        backend = NoisyDeviceBackend(ibmqx4_device, noise_scale=0.0)
        result = backend.run(injector.circuit, shots=512, seed=8)
        report = evaluate_assertions(result.counts, injector.records)
        assert report.pass_rate == pytest.approx(1.0)
        assert set(report.passing) == {"00", "11"}


class TestQasmInterop:
    def test_instrumented_circuit_roundtrips_and_reruns(self):
        from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm

        injector = AssertionInjector(library.ghz_state(3))
        injector.assert_entangled([0, 1, 2], mode="single")
        injector.measure_program()
        restored = circuit_from_qasm(circuit_to_qasm(injector.circuit))
        original = StatevectorBackend().run(injector.circuit, shots=1, seed=9)
        roundtrip = StatevectorBackend().run(restored, shots=1, seed=9)
        assert original.probabilities == roundtrip.probabilities
