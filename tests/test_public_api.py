"""Tests for the public API surface: imports, __all__ hygiene, doctest."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.circuits",
    "repro.core",
    "repro.devices",
    "repro.experiments",
    "repro.noise",
    "repro.results",
    "repro.runtime",
    "repro.simulators",
    "repro.transpiler",
]


class TestPublicSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        names = list(module.__all__)
        assert len(set(names)) == len(names), f"{package}.__all__ has dupes"

    def test_version_exposed(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_quickstart_doctest(self):
        """The README/module-docstring quickstart must actually work."""
        from repro import (
            AssertionInjector,
            QuantumCircuit,
            StatevectorBackend,
        )
        from repro.core import postselect_passing

        bell = QuantumCircuit(2)
        bell.h(0)
        bell.cx(0, 1)
        injector = AssertionInjector(bell)
        injector.assert_entangled([0, 1])
        injector.measure_program()
        result = StatevectorBackend().run(injector.circuit, shots=1000, seed=7)
        filtered = postselect_passing(result.counts, injector.records)
        assert sorted(filtered) == ["00", "11"]


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import exceptions

        error_types = [
            obj
            for name, obj in vars(exceptions).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(error_types) >= 10
        for error_type in error_types:
            assert issubclass(error_type, exceptions.ReproError)

    def test_specific_parents(self):
        from repro import exceptions

        assert issubclass(exceptions.RegisterError, exceptions.CircuitError)
        assert issubclass(exceptions.GateError, exceptions.CircuitError)
        assert issubclass(exceptions.QasmError, exceptions.CircuitError)
        assert issubclass(exceptions.StabilizerError, exceptions.SimulationError)

    def test_catchable_as_base(self):
        from repro.circuits.circuit import QuantumCircuit
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            QuantumCircuit(1).h(9)


class TestModuleDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_package_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20
