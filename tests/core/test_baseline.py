"""Tests for the statistical-assertion baseline (Huang & Martonosi, ISCA'19)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bell_pair
from repro.core.baseline import (
    statistical_classical_assertion,
    statistical_entanglement_assertion,
    statistical_superposition_assertion,
)
from repro.exceptions import AssertionCircuitError


class TestClassicalStatistical:
    def test_correct_value_passes(self, sv_backend):
        program = QuantumCircuit(1)
        outcome = statistical_classical_assertion(
            sv_backend, program, 0, 0, shots=512, seed=1
        )
        assert outcome.passed
        assert outcome.executions == 512
        assert outcome.halted_program

    def test_wrong_value_fails(self, sv_backend):
        program = QuantumCircuit(1)
        program.x(0)
        outcome = statistical_classical_assertion(
            sv_backend, program, 0, 0, shots=512, seed=2
        )
        assert not outcome.passed
        assert outcome.p_value == 0.0

    def test_superposed_value_fails(self, sv_backend):
        program = QuantumCircuit(1)
        program.h(0)
        outcome = statistical_classical_assertion(
            sv_backend, program, 0, 0, shots=512, seed=3
        )
        assert not outcome.passed

    def test_value_validated(self, sv_backend):
        with pytest.raises(AssertionCircuitError):
            statistical_classical_assertion(sv_backend, QuantumCircuit(1), 0, 2)

    def test_program_not_mutated(self, sv_backend):
        program = QuantumCircuit(1)
        statistical_classical_assertion(sv_backend, program, 0, 0, shots=16, seed=4)
        assert len(program) == 0


class TestSuperpositionStatistical:
    def test_plus_passes(self, sv_backend):
        program = QuantumCircuit(1)
        program.h(0)
        outcome = statistical_superposition_assertion(
            sv_backend, program, 0, shots=1024, seed=5
        )
        assert outcome.passed

    def test_classical_state_fails(self, sv_backend):
        outcome = statistical_superposition_assertion(
            sv_backend, QuantumCircuit(1), 0, shots=1024, seed=6
        )
        assert not outcome.passed

    def test_minus_state_false_pass(self, sv_backend):
        """The baseline's structural blind spot: |-> passes a Z-basis test.

        The dynamic Fig. 5 circuit distinguishes |+> from |->; the
        statistical Z-basis assertion cannot (documented weakness)."""
        program = QuantumCircuit(1)
        program.x(0)
        program.h(0)  # |->
        outcome = statistical_superposition_assertion(
            sv_backend, program, 0, shots=1024, seed=7
        )
        assert outcome.passed  # false pass, by design of the baseline


class TestEntanglementStatistical:
    def test_bell_pair_passes(self, sv_backend):
        outcome = statistical_entanglement_assertion(
            sv_backend, bell_pair(), (0, 1), shots=1024, seed=8
        )
        assert outcome.passed

    def test_product_state_fails(self, sv_backend):
        program = QuantumCircuit(2)
        program.h(0)
        program.h(1)
        outcome = statistical_entanglement_assertion(
            sv_backend, program, (0, 1), shots=1024, seed=9
        )
        assert not outcome.passed

    def test_missing_cx_bug_detected(self, sv_backend):
        program = QuantumCircuit(2)
        program.h(0)  # forgot the CX
        outcome = statistical_entanglement_assertion(
            sv_backend, program, (0, 1), shots=1024, seed=10
        )
        assert not outcome.passed

    def test_classical_correlation_false_pass(self, sv_backend):
        """Correlation without entanglement still passes (known limitation)."""
        program = QuantumCircuit(2, 1)
        program.h(0)
        program.measure(0, 0)
        program.x(1, condition=(0, 1))  # classically correlated copy
        outcome = statistical_entanglement_assertion(
            sv_backend, program, (0, 1), shots=1024, seed=11
        )
        assert outcome.passed
