"""Tests for assertion-outcome filtering (the paper's §4 post-selection)."""

import pytest

from repro.core.filtering import (
    assertion_error_rate,
    error_rate_reduction,
    evaluate_assertions,
    postselect_passing,
    result_error_rate,
)
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError
from repro.results.counts import Counts


def make_record(clbit, expected=0, label="a", qubits=(0,), ancillas=(9,)):
    return AssertionRecord(
        kind=AssertionKind.CLASSICAL,
        qubits=qubits,
        ancillas=ancillas,
        clbits=(clbit,),
        expected=(expected,),
        label=label,
    )


class TestEvaluateAssertions:
    def test_split_and_bit_removal(self):
        # bit 0 = assertion, bits 1-2 = program result.
        counts = Counts({"000": 70, "011": 20, "100": 7, "111": 3})
        record = make_record(0)
        report = evaluate_assertions(counts, [record])
        assert report.total_shots == 100
        assert report.pass_rate == pytest.approx(0.9)
        assert report.passing == {"00": 70, "11": 20}
        assert report.failing == {"00": 7, "11": 3}
        assert report.per_assertion_error_rate["a"] == pytest.approx(0.1)

    def test_expected_one_semantics(self):
        counts = Counts({"10": 80, "00": 20})
        record = make_record(0, expected=1)
        report = evaluate_assertions(counts, [record])
        assert report.pass_rate == pytest.approx(0.8)

    def test_multiple_records_all_must_pass(self):
        counts = Counts({"00x".replace("x", "0"): 50, "010": 25, "100": 25})
        records = [make_record(0, label="first"), make_record(1, label="second",
                                                              ancillas=(8,))]
        report = evaluate_assertions(counts, records)
        assert report.pass_rate == pytest.approx(0.5)
        assert report.per_assertion_error_rate["first"] == pytest.approx(0.25)
        assert report.per_assertion_error_rate["second"] == pytest.approx(0.25)

    def test_no_records_rejected(self):
        with pytest.raises(AssertionCircuitError):
            evaluate_assertions(Counts({"0": 1}), [])

    def test_shared_clbits_rejected(self):
        counts = Counts({"00": 1})
        with pytest.raises(AssertionCircuitError, match="share"):
            evaluate_assertions(counts, [make_record(0), make_record(0)])

    def test_clbit_outside_histogram_rejected(self):
        with pytest.raises(AssertionCircuitError, match="outside"):
            evaluate_assertions(Counts({"0": 1}), [make_record(3)])

    def test_all_bits_are_assertions(self):
        counts = Counts({"0": 9, "1": 1})
        report = evaluate_assertions(counts, [make_record(0)])
        assert report.passing.shots == 9
        assert report.passing.num_bits == 0 or report.passing == {"": 9}

    def test_discard_fraction(self):
        counts = Counts({"00": 90, "10": 10})
        report = evaluate_assertions(counts, [make_record(0)])
        assert report.discard_fraction() == pytest.approx(0.1)


class TestHelpers:
    def test_postselect_passing(self):
        counts = Counts({"000": 70, "100": 30})
        filtered = postselect_passing(counts, [make_record(0)])
        assert filtered == {"00": 70}

    def test_assertion_error_rate(self):
        counts = Counts({"00": 75, "10": 25})
        assert assertion_error_rate(counts, [make_record(0)]) == pytest.approx(0.25)

    def test_error_rate_reduction_matches_paper_arithmetic(self):
        """Table 1: 3.5% raw -> 2.5% filtered is a 28.5% reduction."""
        assert error_rate_reduction(0.035, 0.025) == pytest.approx(0.2857, abs=1e-3)

    def test_error_rate_reduction_zero_raw(self):
        assert error_rate_reduction(0.0, 0.0) == 0.0

    def test_error_rate_reduction_validation(self):
        with pytest.raises(AssertionCircuitError):
            error_rate_reduction(-0.1, 0.0)

    def test_result_error_rate(self):
        counts = Counts({"00": 45, "11": 45, "01": 6, "10": 4})
        assert result_error_rate(counts, ["00", "11"]) == pytest.approx(0.10)

    def test_result_error_rate_empty_rejected(self):
        with pytest.raises(AssertionCircuitError):
            result_error_rate(Counts(), ["00"])
