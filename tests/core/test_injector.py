"""Tests for the AssertionInjector program-instrumentation API."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bell_pair, ghz_state
from repro.core.injector import AssertionInjector
from repro.exceptions import AssertionCircuitError
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


class TestBasicInstrumentation:
    def test_program_untouched(self):
        program = bell_pair()
        before = len(program)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1])
        assert len(program) == before

    def test_assertion_entry_points(self):
        injector = AssertionInjector(QuantumCircuit(3))
        injector.assert_classical(0, 0)
        injector.assert_entangled([0, 1])
        injector.assert_superposition(2)
        injector.assert_state(0, 0.3, 0.1)
        injector.assert_parity([0, 1])
        assert len(injector.records) == 5

    def test_assert_uniform_covers_each_qubit(self):
        injector = AssertionInjector(QuantumCircuit(3))
        records = injector.assert_uniform([0, 1, 2])
        assert len(records) == 3
        assert {r.qubits[0] for r in records} == {0, 1, 2}

    def test_ancillas_count(self):
        injector = AssertionInjector(ghz_state(4))
        injector.assert_entangled([0, 1, 2, 3], mode="pairwise")
        assert injector.num_ancillas == 3

    def test_assertion_clbits_sorted(self):
        injector = AssertionInjector(QuantumCircuit(2))
        injector.assert_classical(0, 0)
        injector.assert_classical(1, 0)
        assert injector.assertion_clbits == [0, 1]


class TestProgramContinuation:
    def test_apply_appends_on_program_bits(self):
        stage1 = QuantumCircuit(2)
        stage1.h(0)
        injector = AssertionInjector(stage1)
        injector.assert_superposition(0)
        stage2 = QuantumCircuit(2)
        stage2.cx(0, 1)
        injector.apply(stage2)
        injector.assert_entangled([0, 1])
        injector.measure_program()
        result = SIM.run(injector.circuit, shots=500, seed=3)
        from repro.core.filtering import postselect_passing

        filtered = postselect_passing(result.counts, injector.records)
        assert set(filtered) == {"00", "11"}

    def test_apply_size_validated(self):
        injector = AssertionInjector(QuantumCircuit(1))
        with pytest.raises(AssertionCircuitError, match="continuation"):
            injector.apply(QuantumCircuit(2))

    def test_apply_cannot_touch_ancillas(self):
        injector = AssertionInjector(QuantumCircuit(1))
        injector.assert_classical(0, 0)  # allocates qubit 1
        continuation = QuantumCircuit(1)
        continuation.x(0)
        injector.apply(continuation)
        # The X must land on program qubit 0, not the ancilla.
        assert injector.circuit.data[-1].qubits == (0,)

    def test_measure_program_defaults_to_all(self):
        injector = AssertionInjector(bell_pair())
        injector.assert_entangled([0, 1])
        clbits = injector.measure_program()
        assert len(clbits) == 2
        # Result clbits come after the assertion clbit.
        assert min(clbits) > injector.records[0].clbits[0]

    def test_measure_program_subset(self):
        injector = AssertionInjector(bell_pair())
        clbits = injector.measure_program([1])
        assert len(clbits) == 1

    def test_measure_program_rejects_ancilla(self):
        injector = AssertionInjector(bell_pair())
        injector.assert_entangled([0, 1])  # ancilla is qubit 2
        with pytest.raises(AssertionCircuitError, match="not a program qubit"):
            injector.measure_program([2])


class TestOverheadAccounting:
    def test_overhead_fields(self):
        injector = AssertionInjector(bell_pair())
        injector.assert_entangled([0, 1])
        overhead = injector.overhead()
        assert overhead["extra_qubits"] == 1
        assert overhead["extra_clbits"] == 1
        assert overhead["extra_cx"] == 2  # the two parity CNOTs
        assert overhead["num_assertions"] == 1

    def test_repr(self):
        injector = AssertionInjector(bell_pair())
        injector.assert_entangled([0, 1])
        assert "assertions=1" in repr(injector)
