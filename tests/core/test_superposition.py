"""Tests for the superposition assertion (paper §3.3, Fig. 5) and the
rotated-basis state assertion generalisation.

Numerically re-derives the section's algebra: |+> / |-> give deterministic
ancilla outcomes; real inputs obey P(error) = (2 - 4ab)/4; any input exits
in an equal-magnitude superposition after the ancilla measurement.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.states import partial_trace, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.core.superposition import (
    append_state_assertion,
    append_superposition_assertion,
    superposition_error_probability,
)
from repro.core.types import AssertionKind
from repro.exceptions import AssertionCircuitError
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


def asserted(prep, sign="+"):
    qc = QuantumCircuit(1)
    prep(qc)
    record = append_superposition_assertion(qc, 0, sign=sign)
    return qc, record


class TestDeterministicCases:
    def test_plus_passes(self):
        qc, _ = asserted(lambda c: c.h(0))
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_minus_fails_plus_assertion(self):
        qc, _ = asserted(lambda c: (c.x(0), c.h(0)))
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}

    def test_minus_mode_expected_one(self):
        qc, record = asserted(lambda c: (c.x(0), c.h(0)), sign="-")
        assert record.expected == (1,)
        probs = SIM.exact_probabilities(qc)
        assert probs == {"1": pytest.approx(1.0)}
        assert record.passes("1")

    def test_plus_state_preserved_after_assertion(self):
        qc, _ = asserted(lambda c: c.h(0))
        state, prob = postselected_statevector_after(qc, {0: 0})
        assert prob == pytest.approx(1.0)
        reduced = partial_trace(state, keep=[0])
        plus = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        assert state_fidelity(reduced, plus) == pytest.approx(1.0, abs=1e-9)


class TestClassicalInputs:
    @pytest.mark.parametrize("prep", [lambda c: None, lambda c: c.x(0)],
                             ids=["zero", "one"])
    def test_fifty_percent_error(self, prep):
        """The Fig. 7 signature: a classical input errs exactly half the time."""
        qc, _ = asserted(prep)
        probs = SIM.exact_probabilities(qc)
        assert probs["0"] == pytest.approx(0.5)
        assert probs["1"] == pytest.approx(0.5)

    @pytest.mark.parametrize("outcome", [0, 1])
    def test_forced_into_equal_superposition(self, outcome):
        """Whatever the ancilla reads, the qubit exits with 50/50 weights."""
        qc, _ = asserted(lambda c: None)
        state, _prob = postselected_statevector_after(qc, {0: outcome})
        reduced = partial_trace(state, keep=[0])
        assert reduced[0, 0] == pytest.approx(0.5, abs=1e-9)
        assert reduced[1, 1] == pytest.approx(0.5, abs=1e-9)


class TestErrorFormula:
    @given(theta=st.floats(min_value=0.0, max_value=math.pi))
    @settings(max_examples=50, deadline=None)
    def test_matches_paper_formula(self, theta):
        """P(error) = (2 - 4ab)/4 for real a = cos(t/2), b = sin(t/2)."""
        a, b = math.cos(theta / 2.0), math.sin(theta / 2.0)
        qc, _ = asserted(lambda c: c.ry(theta, 0))
        probs = SIM.exact_probabilities(qc)
        assert probs.get("1", 0.0) == pytest.approx(
            superposition_error_probability(a, b), abs=1e-9
        )

    def test_formula_validation(self):
        with pytest.raises(AssertionCircuitError, match="normalis"):
            superposition_error_probability(1.0, 1.0)

    def test_formula_extremes(self):
        inv = 1 / math.sqrt(2)
        assert superposition_error_probability(inv, inv) == pytest.approx(0.0)
        assert superposition_error_probability(inv, -inv) == pytest.approx(1.0)
        assert superposition_error_probability(1.0, 0.0) == pytest.approx(0.5)


class TestCircuitStructure:
    def test_gate_sequence_matches_fig5(self):
        qc, _ = asserted(lambda c: None)
        names = [inst.name for inst in qc]
        assert names == ["cx", "h", "h", "cx", "measure"]

    def test_record_fields(self):
        qc, record = asserted(lambda c: None)
        assert record.kind is AssertionKind.SUPERPOSITION
        assert record.qubits == (0,)
        assert record.ancillas == (1,)

    def test_invalid_sign(self):
        with pytest.raises(AssertionCircuitError):
            append_superposition_assertion(QuantumCircuit(1), 0, sign="x")


class TestStateAssertion:
    @given(
        theta=st.floats(min_value=0.0, max_value=math.pi),
        phi=st.floats(min_value=0.0, max_value=2 * math.pi),
    )
    @settings(max_examples=40, deadline=None)
    def test_target_state_always_passes(self, theta, phi):
        qc = QuantumCircuit(1)
        qc.u3(theta, phi, 0.0, 0)
        append_state_assertion(qc, 0, theta, phi)
        probs = SIM.exact_probabilities(qc)
        assert probs.get("0", 0.0) == pytest.approx(1.0, abs=1e-9)

    @given(
        target=st.floats(min_value=0.0, max_value=math.pi),
        actual=st.floats(min_value=0.0, max_value=math.pi),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_probability_is_infidelity(self, target, actual):
        """P(error) = 1 - |<target|actual>|^2."""
        qc = QuantumCircuit(1)
        qc.ry(actual, 0)
        append_state_assertion(qc, 0, target, 0.0)
        probs = SIM.exact_probabilities(qc)
        overlap = math.cos((target - actual) / 2.0) ** 2
        assert probs.get("1", 0.0) == pytest.approx(1.0 - overlap, abs=1e-9)

    def test_pass_projects_onto_target(self):
        target_theta, target_phi = 1.1, 0.6
        qc = QuantumCircuit(1)
        qc.h(0)  # wrong state on purpose
        append_state_assertion(qc, 0, target_theta, target_phi)
        state, _prob = postselected_statevector_after(qc, {0: 0})
        reduced = partial_trace(state, keep=[0])
        target = np.array(
            [
                math.cos(target_theta / 2.0),
                np.exp(1j * target_phi) * math.sin(target_theta / 2.0),
            ],
            dtype=complex,
        )
        assert state_fidelity(reduced, target) == pytest.approx(1.0, abs=1e-9)

    def test_reduces_to_classical_assertion_at_theta_zero(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        append_state_assertion(qc, 0, 0.0, 0.0)
        probs = SIM.exact_probabilities(qc)
        assert probs.get("1", 0.0) == pytest.approx(0.5)

    def test_reduces_to_plus_assertion_at_theta_half_pi(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        append_state_assertion(qc, 0, math.pi / 2.0, 0.0)
        probs = SIM.exact_probabilities(qc)
        assert probs.get("0", 0.0) == pytest.approx(1.0)
