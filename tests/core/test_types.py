"""Tests for assertion record bookkeeping."""

import pytest

from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError


def record(**overrides):
    base = dict(
        kind=AssertionKind.CLASSICAL,
        qubits=(0,),
        ancillas=(1,),
        clbits=(0,),
        expected=(0,),
        label="demo",
    )
    base.update(overrides)
    return AssertionRecord(**base)


class TestValidation:
    def test_requires_qubits(self):
        with pytest.raises(AssertionCircuitError):
            record(qubits=())

    def test_ancilla_clbit_alignment(self):
        with pytest.raises(AssertionCircuitError):
            record(ancillas=(1, 2))

    def test_expected_alignment(self):
        with pytest.raises(AssertionCircuitError):
            record(expected=(0, 0))

    def test_expected_binary(self):
        with pytest.raises(AssertionCircuitError):
            record(expected=(2,))

    def test_ancilla_disjoint_from_tested(self):
        with pytest.raises(AssertionCircuitError):
            record(ancillas=(0,))


class TestPasses:
    def test_passes_on_expected_value(self):
        rec = record(expected=(0,))
        assert rec.passes("00")
        assert not rec.passes("10")  # clbit 0 reads 1

    def test_expected_one(self):
        rec = record(expected=(1,))
        assert rec.passes("10")
        assert not rec.passes("00")

    def test_multi_bit_record(self):
        rec = record(ancillas=(1, 2), clbits=(0, 1), expected=(0, 0))
        assert rec.passes("00x"[:2] + "0")
        assert not rec.passes("010")

    def test_num_ancillas(self):
        assert record().num_ancillas == 1

    def test_describe_mentions_label(self):
        assert "demo" in record().describe()

    def test_kind_str(self):
        assert str(AssertionKind.SUPERPOSITION) == "superposition"
