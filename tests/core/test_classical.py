"""Tests for the classical-value assertion (paper §3.1, Fig. 2).

These re-derive the section's proof numerically: classical inputs give
deterministic ancilla outcomes; a superposed input ``a|0> + b|1>`` fails
with probability |b|^2 and is *projected* to the asserted value on passing
shots (the auto-correction property).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.core.classical import append_classical_assertion
from repro.core.types import AssertionKind
from repro.exceptions import AssertionCircuitError
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


def asserted_circuit(prep, value=0):
    qc = QuantumCircuit(1)
    prep(qc)
    record = append_classical_assertion(qc, 0, value)
    return qc, record


class TestClassicalInputs:
    def test_zero_passes_assert_zero(self):
        qc, _ = asserted_circuit(lambda c: None, value=0)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_one_fails_assert_zero(self):
        qc, _ = asserted_circuit(lambda c: c.x(0), value=0)
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}

    def test_one_passes_assert_one(self):
        qc, _ = asserted_circuit(lambda c: c.x(0), value=1)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_zero_fails_assert_one(self):
        qc, _ = asserted_circuit(lambda c: None, value=1)
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}


class TestSuperposedInputs:
    @given(theta=st.floats(min_value=0.05, max_value=math.pi - 0.05))
    @settings(max_examples=40, deadline=None)
    def test_error_probability_is_b_squared(self, theta):
        """P(assertion error) = |b|^2 for input cos(t/2)|0> + sin(t/2)|1>."""
        qc, _ = asserted_circuit(lambda c: c.ry(theta, 0), value=0)
        probs = SIM.exact_probabilities(qc)
        expected_error = math.sin(theta / 2.0) ** 2
        assert probs.get("1", 0.0) == pytest.approx(expected_error, abs=1e-9)

    @given(theta=st.floats(min_value=0.05, max_value=math.pi - 0.05))
    @settings(max_examples=25, deadline=None)
    def test_projection_on_pass(self, theta):
        """Passing shots leave the tested qubit exactly |0> (auto-correct)."""
        qc, _ = asserted_circuit(lambda c: c.ry(theta, 0), value=0)
        state, _prob = postselected_statevector_after(qc, {0: 0})
        # Qubit 0 is |0>; ancilla |0>.
        assert state.probabilities() == {"00": pytest.approx(1.0)}

    def test_projection_on_fail(self):
        """Failing shots project the qubit to |1> (the paper's other branch)."""
        qc, _ = asserted_circuit(lambda c: c.h(0), value=0)
        state, prob = postselected_statevector_after(qc, {0: 1})
        assert prob == pytest.approx(0.5)
        assert state.probabilities() == {"11": pytest.approx(1.0)}

    def test_assert_one_projects_to_one(self):
        qc, _ = asserted_circuit(lambda c: c.h(0), value=1)
        state, _ = postselected_statevector_after(qc, {0: 0})
        # Tested qubit forced to |1>; ancilla was X-initialised then XORed
        # to 0 on the passing branch.
        tested = state.probabilities()
        assert tested == {"10": pytest.approx(1.0)}


class TestMultiQubit:
    def test_vector_assertion(self):
        qc = QuantumCircuit(3)
        qc.x(1)
        record = append_classical_assertion(qc, [0, 1, 2], [0, 1, 0])
        assert record.num_ancillas == 3
        probs = SIM.exact_probabilities(qc)
        assert probs == {"000": pytest.approx(1.0)}

    def test_scalar_broadcast(self):
        qc = QuantumCircuit(2)
        record = append_classical_assertion(qc, [0, 1], 0)
        assert record.expected == (0, 0)

    def test_partial_violation_flags_only_that_bit(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        append_classical_assertion(qc, [0, 1], 0)
        probs = SIM.exact_probabilities(qc)
        assert probs == {"01": pytest.approx(1.0)}


class TestBookkeeping:
    def test_record_fields(self):
        qc = QuantumCircuit(2)
        record = append_classical_assertion(qc, 1, 0, label="mine")
        assert record.kind is AssertionKind.CLASSICAL
        assert record.qubits == (1,)
        assert record.ancillas == (2,)
        assert record.clbits == (0,)
        assert record.label == "mine"

    def test_circuit_growth(self):
        qc = QuantumCircuit(1)
        append_classical_assertion(qc, 0, 0)
        assert qc.num_qubits == 2
        assert qc.num_clbits == 1
        # One CNOT, one measure (value 0 needs no ancilla X).
        assert qc.count_ops() == {"cx": 1, "measure": 1}

    def test_assert_one_adds_x(self):
        qc = QuantumCircuit(1)
        append_classical_assertion(qc, 0, 1)
        assert qc.count_ops() == {"x": 1, "cx": 1, "measure": 1}

    def test_repeated_assertions_get_distinct_registers(self):
        qc = QuantumCircuit(1)
        first = append_classical_assertion(qc, 0, 0)
        second = append_classical_assertion(qc, 0, 0)
        assert first.ancillas != second.ancillas
        assert first.clbits != second.clbits


class TestValidation:
    def test_empty_qubits(self):
        with pytest.raises(AssertionCircuitError):
            append_classical_assertion(QuantumCircuit(1), [])

    def test_duplicate_qubits(self):
        with pytest.raises(AssertionCircuitError, match="duplicate"):
            append_classical_assertion(QuantumCircuit(2), [0, 0])

    def test_value_range(self):
        with pytest.raises(AssertionCircuitError, match="0 or 1"):
            append_classical_assertion(QuantumCircuit(1), 0, 2)

    def test_value_count_mismatch(self):
        with pytest.raises(AssertionCircuitError, match="values for"):
            append_classical_assertion(QuantumCircuit(2), [0, 1], [0, 1, 0])

    def test_qubit_range_checked(self):
        from repro.exceptions import CircuitError

        with pytest.raises(CircuitError):
            append_classical_assertion(QuantumCircuit(1), 5)
