"""Tests for amplitude estimation from assertion statistics (§3.1/§3.3)."""

import math

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core.classical import append_classical_assertion
from repro.core.entanglement import append_parity_assertion
from repro.core.estimation import (
    estimate_amplitudes_from_classical_assertion,
    estimate_amplitudes_from_superposition_assertion,
    estimate_odd_parity_weight,
)
from repro.core.superposition import append_superposition_assertion
from repro.exceptions import AssertionCircuitError
from repro.results.counts import Counts
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


def run_counts(circuit, shots=20000, seed=7):
    return SIM.run(circuit, shots=shots, seed=seed).counts


class TestClassicalEstimation:
    @pytest.mark.parametrize("theta", [0.4, 1.0, math.pi / 2, 2.4])
    def test_recovers_population(self, theta):
        qc = QuantumCircuit(1)
        qc.ry(theta, 0)
        record = append_classical_assertion(qc, 0, 0)
        counts = run_counts(qc)
        estimate = estimate_amplitudes_from_classical_assertion(counts, record)
        expected_p1 = math.sin(theta / 2.0) ** 2
        assert estimate["p1"] == pytest.approx(expected_p1, abs=0.02)
        assert estimate["p0"] == pytest.approx(1 - expected_p1, abs=0.02)
        low, high = estimate["p1_interval"]
        assert low <= expected_p1 <= high

    def test_kind_checked(self):
        qc = QuantumCircuit(2)
        record = append_parity_assertion(qc, [0, 1])
        with pytest.raises(AssertionCircuitError, match="not a classical"):
            estimate_amplitudes_from_classical_assertion(Counts({"0": 1}), record)

    def test_empty_counts_rejected(self):
        qc = QuantumCircuit(1)
        record = append_classical_assertion(qc, 0, 0)
        with pytest.raises(AssertionCircuitError, match="empty"):
            estimate_amplitudes_from_classical_assertion(Counts(), record)

    def test_multi_qubit_record_rejected(self):
        qc = QuantumCircuit(2)
        record = append_classical_assertion(qc, [0, 1], 0)
        with pytest.raises(AssertionCircuitError, match="single-qubit"):
            estimate_amplitudes_from_classical_assertion(Counts({"00": 1}), record)


class TestSuperpositionEstimation:
    @pytest.mark.parametrize("theta", [0.3, 0.8, math.pi / 2, 1.9])
    def test_recovers_real_amplitudes(self, theta):
        a, b = math.cos(theta / 2.0), math.sin(theta / 2.0)
        qc = QuantumCircuit(1)
        qc.ry(theta, 0)
        record = append_superposition_assertion(qc, 0)
        counts = run_counts(qc)
        estimate = estimate_amplitudes_from_superposition_assertion(counts, record)
        assert estimate["ab"] == pytest.approx(a * b, abs=0.02)
        # Returned with a >= b; compare order-insensitively.
        assert sorted([estimate["a"], estimate["b"]]) == pytest.approx(
            sorted([a, b]), abs=0.05
        )

    def test_plus_input_estimates_equal_amplitudes(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        record = append_superposition_assertion(qc, 0)
        estimate = estimate_amplitudes_from_superposition_assertion(
            run_counts(qc), record
        )
        inv = 1 / math.sqrt(2)
        assert estimate["a"] == pytest.approx(inv, abs=0.02)
        assert estimate["b"] == pytest.approx(inv, abs=0.02)

    def test_classical_input_signature(self):
        """50% errors -> ab = 0 -> (a, b) = (1, 0): flags a classical state."""
        qc = QuantumCircuit(1)
        record = append_superposition_assertion(qc, 0)
        estimate = estimate_amplitudes_from_superposition_assertion(
            run_counts(qc), record
        )
        assert estimate["ab"] == pytest.approx(0.0, abs=0.02)
        assert estimate["a"] == pytest.approx(1.0, abs=0.05)
        assert estimate["b"] == pytest.approx(0.0, abs=0.05)

    def test_kind_checked(self):
        qc = QuantumCircuit(1)
        record = append_classical_assertion(qc, 0, 0)
        with pytest.raises(AssertionCircuitError, match="not a superposition"):
            estimate_amplitudes_from_superposition_assertion(
                Counts({"0": 1}), record
            )


class TestParityEstimation:
    def test_recovers_odd_parity_weight(self):
        import numpy as np

        amps = np.array([0.7, 0.4, 0.5, math.sqrt(1 - 0.9)], dtype=complex)
        amps /= np.linalg.norm(amps)
        qc = QuantumCircuit(2)
        record = append_parity_assertion(qc, [0, 1])
        init = np.zeros(8, dtype=complex)
        for idx, amp in enumerate(amps):
            init[idx << 1] = amp
        counts = SIM.run(qc, shots=20000, seed=9, initial_state=init).counts
        estimate = estimate_odd_parity_weight(counts, record)
        expected = abs(amps[1]) ** 2 + abs(amps[2]) ** 2
        assert estimate["odd_parity_weight"] == pytest.approx(expected, abs=0.02)
        low, high = estimate["interval"]
        assert low <= expected <= high

    def test_kind_checked(self):
        qc = QuantumCircuit(1)
        record = append_classical_assertion(qc, 0, 0)
        with pytest.raises(AssertionCircuitError, match="not an entanglement"):
            estimate_odd_parity_weight(Counts({"0": 1}), record)
