"""Tests for the entanglement (parity) assertion (paper §3.2, Figs. 3-4).

Numerically re-derives the section's claims: on a GHZ-family input the
ancilla disentangles and reads the expected value deterministically; on a
general two-qubit state the error probability equals the odd-parity weight
|c|^2 + |d|^2 and passing shots are projected back into the even-parity
(entangled) subspace; an odd CNOT count leaves the ancilla entangled.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.states import entanglement_entropy, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bell_pair, ghz_state
from repro.core.entanglement import (
    append_entanglement_assertion,
    append_parity_assertion,
)
from repro.exceptions import AssertionCircuitError
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


class TestBellFamily:
    def test_phi_plus_passes_even_parity(self):
        qc = bell_pair("phi+")
        append_entanglement_assertion(qc, [0, 1], expected_parity=0)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_phi_minus_passes_even_parity(self):
        qc = bell_pair("phi-")
        append_entanglement_assertion(qc, [0, 1], expected_parity=0)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_psi_plus_fails_even_parity(self):
        qc = bell_pair("psi+")
        append_entanglement_assertion(qc, [0, 1], expected_parity=0)
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}

    def test_psi_plus_passes_odd_parity(self):
        qc = bell_pair("psi+")
        append_entanglement_assertion(qc, [0, 1], expected_parity=1)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_phi_plus_fails_odd_parity(self):
        qc = bell_pair("phi+")
        append_entanglement_assertion(qc, [0, 1], expected_parity=1)
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}


class TestAncillaDisentangles:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_ancilla_unentangled_before_measurement(self, n):
        """The Fig. 3/4 guarantee: for a GHZ input the ancilla factors out."""
        qc = ghz_state(n)
        records = append_entanglement_assertion(qc, list(range(n)), mode="single")
        ancilla = records[0].ancillas[0]
        pre_measure = qc.copy()
        pre_measure.data = [i for i in pre_measure.data if i.name != "measure"]
        state = SIM.final_statevector(pre_measure)
        assert entanglement_entropy(state, [ancilla]) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_program_state_untouched_after_assertion(self, n):
        """|psi3> = |psi> (x) |0>: the GHZ state survives the check."""
        qc = ghz_state(n)
        append_entanglement_assertion(qc, list(range(n)), mode="single")
        state, prob = postselected_statevector_after(
            qc, {0: 0}
        )
        assert prob == pytest.approx(1.0)
        ghz = np.zeros(2 ** (n + 1), dtype=complex)
        ghz[0] = 1 / math.sqrt(2)                  # |0...0>|anc=0>
        ghz[(2 ** (n + 1)) - 2] = 1 / math.sqrt(2)  # |1...1>|anc=0>
        assert state_fidelity(state.data, ghz) == pytest.approx(1.0, abs=1e-9)


class TestGeneralInputs:
    @given(
        weights=st.tuples(
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_error_rate_is_odd_parity_weight(self, weights):
        """P(error) = |c|^2 + |d|^2 for a|00> + b|11> + c|10> + d|01>."""
        amps = np.array(
            [weights[0], weights[3], weights[2], weights[1]], dtype=complex
        )  # order |00>, |01>, |10>, |11>
        amps = amps / np.linalg.norm(amps)
        qc = QuantumCircuit(2)
        append_parity_assertion(qc, [0, 1])
        probs = SIM.exact_probabilities(qc, initial_state=_initial_3q(amps))
        odd_weight = abs(amps[1]) ** 2 + abs(amps[2]) ** 2
        assert probs.get("1", 0.0) == pytest.approx(odd_weight, abs=1e-9)

    def test_pass_projects_to_even_subspace(self):
        amps = np.array([0.6, 0.5, 0.4, math.sqrt(1 - 0.77)], dtype=complex)
        amps = amps / np.linalg.norm(amps)
        qc = QuantumCircuit(2)
        append_parity_assertion(qc, [0, 1])
        state, _prob = postselected_statevector_after(
            qc, {0: 0}, initial_state=_initial_3q(amps)
        )
        probs = state.probabilities()
        assert set(probs) <= {"000", "110"}  # even parity, ancilla 0

    def test_fail_projects_to_odd_subspace(self):
        amps = np.array([0.6, 0.5, 0.4, math.sqrt(1 - 0.77)], dtype=complex)
        amps = amps / np.linalg.norm(amps)
        qc = QuantumCircuit(2)
        append_parity_assertion(qc, [0, 1])
        state, _prob = postselected_statevector_after(
            qc, {0: 1}, initial_state=_initial_3q(amps)
        )
        probs = state.probabilities()
        assert set(probs) <= {"011", "101"}  # odd parity, ancilla 1


def _initial_3q(two_qubit_amps):
    """Lift 2-qubit amplitudes to the 3-qubit (with ancilla |0>) register."""
    init = np.zeros(8, dtype=complex)
    for idx, amp in enumerate(two_qubit_amps):
        init[idx << 1] = amp  # ancilla (last qubit) = 0
    return init


class TestEvenOddCNOTCount:
    def test_odd_count_rejected_by_default(self):
        qc = ghz_state(3)
        with pytest.raises(AssertionCircuitError, match="even number"):
            append_parity_assertion(qc, [0, 1, 2])

    def test_odd_count_allowed_when_explicit(self):
        qc = ghz_state(3)
        record = append_parity_assertion(qc, [0, 1, 2], enforce_even=False)
        assert record.ancillas == (3,)

    def test_odd_count_leaves_ancilla_entangled(self):
        """The Fig. 4 warning, verified: odd CNOTs entangle the ancilla."""
        qc = ghz_state(3)
        append_parity_assertion(qc, [0, 1, 2], enforce_even=False)
        pre = qc.copy()
        pre.data = [i for i in pre.data if i.name != "measure"]
        state = SIM.final_statevector(pre)
        assert entanglement_entropy(state, [3]) == pytest.approx(1.0, abs=1e-9)

    def test_even_padding_via_repeat(self):
        """Fig. 4's fix: repeat a qubit to reach an even count."""
        qc = ghz_state(3)
        append_parity_assertion(qc, [0, 1, 2, 2])
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}


class TestModes:
    def test_pairwise_allocates_n_minus_1_ancillas(self):
        qc = ghz_state(4)
        records = append_entanglement_assertion(qc, [0, 1, 2, 3], mode="pairwise")
        assert len(records) == 3
        assert qc.num_qubits == 7

    def test_single_allocates_one_ancilla(self):
        qc = ghz_state(4)
        records = append_entanglement_assertion(qc, [0, 1, 2, 3], mode="single")
        assert len(records) == 1
        assert qc.num_qubits == 5

    def test_pairwise_catches_middle_flip(self):
        """A flipped middle qubit breaks adjacent-pair parity."""
        qc = ghz_state(3)
        qc.x(1)  # bug
        append_entanglement_assertion(qc, [0, 1, 2], mode="pairwise")
        probs = SIM.exact_probabilities(qc)
        # Both pair assertions must fail ('11') on every shot.
        assert probs == {"11": pytest.approx(1.0)}

    def test_unknown_mode(self):
        with pytest.raises(AssertionCircuitError, match="unknown"):
            append_entanglement_assertion(ghz_state(2), [0, 1], mode="weird")


class TestValidation:
    def test_two_qubit_minimum(self):
        with pytest.raises(AssertionCircuitError):
            append_entanglement_assertion(QuantumCircuit(2), [0])

    def test_duplicates_rejected(self):
        with pytest.raises(AssertionCircuitError, match="duplicate"):
            append_entanglement_assertion(QuantumCircuit(2), [0, 0])

    def test_odd_parity_needs_two_qubits(self):
        with pytest.raises(AssertionCircuitError, match="exactly 2"):
            append_entanglement_assertion(
                QuantumCircuit(3), [0, 1, 2], expected_parity=1
            )

    def test_parity_value_validated(self):
        with pytest.raises(AssertionCircuitError):
            append_parity_assertion(QuantumCircuit(2), [0, 1], expected_parity=2)

    def test_minimum_sources(self):
        with pytest.raises(AssertionCircuitError, match="at least two"):
            append_parity_assertion(QuantumCircuit(2), [0])
