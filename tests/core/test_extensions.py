"""Tests for the extension assertions (X-parity, full GHZ check, swap test)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.states import entanglement_entropy, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bell_pair, ghz_state
from repro.core.entanglement import append_entanglement_assertion
from repro.core.extensions import (
    append_equality_assertion,
    append_ghz_assertion,
    append_phase_parity_assertion,
)
from repro.core.injector import AssertionInjector
from repro.exceptions import AssertionCircuitError
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


class TestPhaseParityAssertion:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_ghz_passes_any_size(self, n):
        """No even-count rule: the X..X stabilizer is deterministic for
        every n (unlike the Z-parity of Fig. 4)."""
        qc = ghz_state(n)
        append_phase_parity_assertion(qc, list(range(n)))
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_minus_ghz_fails(self, n):
        qc = ghz_state(n)
        qc.z(0)  # |0..0> - |1..1>
        append_phase_parity_assertion(qc, list(range(n)))
        assert SIM.exact_probabilities(qc) == {"1": pytest.approx(1.0)}

    @pytest.mark.parametrize("n", [2, 3])
    def test_minus_ghz_passes_with_expected_one(self, n):
        qc = ghz_state(n)
        qc.z(0)
        append_phase_parity_assertion(qc, list(range(n)), expected_parity=1)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_z_parity_blind_to_phase_flip(self):
        """The gap this extension closes: the paper's Z-parity circuit
        cannot see a phase flip."""
        qc = bell_pair()
        qc.z(0)  # phase error
        append_entanglement_assertion(qc, [0, 1])  # paper's check
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}  # blind!
        qc2 = bell_pair()
        qc2.z(0)
        append_phase_parity_assertion(qc2, [0, 1])  # extension
        assert SIM.exact_probabilities(qc2) == {"1": pytest.approx(1.0)}  # caught

    def test_ancilla_disentangles(self):
        qc = ghz_state(3)
        append_phase_parity_assertion(qc, [0, 1, 2])
        pre = qc.copy()
        pre.data = [i for i in pre.data if i.name != "measure"]
        state = SIM.final_statevector(pre)
        assert entanglement_entropy(state, [3]) == pytest.approx(0.0, abs=1e-9)

    def test_ghz_state_preserved_on_pass(self):
        qc = ghz_state(3)
        append_phase_parity_assertion(qc, [0, 1, 2])
        state, prob = postselected_statevector_after(qc, {0: 0})
        assert prob == pytest.approx(1.0)
        ghz = np.zeros(16, dtype=complex)
        ghz[0b0000] = ghz[0b1110] = 1 / math.sqrt(2)
        assert state_fidelity(state.data, ghz) == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(AssertionCircuitError):
            append_phase_parity_assertion(QuantumCircuit(2), [0])
        with pytest.raises(AssertionCircuitError, match="duplicate"):
            append_phase_parity_assertion(QuantumCircuit(2), [0, 0])
        with pytest.raises(AssertionCircuitError):
            append_phase_parity_assertion(QuantumCircuit(2), [0, 1], expected_parity=3)


class TestFullGHZAssertion:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_ghz_passes_all_checks(self, n):
        qc = ghz_state(n)
        records = append_ghz_assertion(qc, list(range(n)))
        assert len(records) == n  # n-1 Z-pairs + 1 X-parity
        probs = SIM.exact_probabilities(qc)
        assert probs == {"0" * n: pytest.approx(1.0)}

    @pytest.mark.parametrize(
        "bug,description",
        [
            (lambda qc: qc.x(1), "bit flip"),
            (lambda qc: qc.z(2), "phase flip"),
            (lambda qc: qc.h(0), "coherent error"),
        ],
        ids=["bitflip", "phaseflip", "coherent"],
    )
    def test_every_single_qubit_error_detected(self, bug, description):
        """Completeness: any non-GHZ deviation trips at least one check
        with non-zero probability."""
        qc = ghz_state(3)
        bug(qc)
        append_ghz_assertion(qc, [0, 1, 2])
        probs = SIM.exact_probabilities(qc)
        all_pass = probs.get("000", 0.0)
        assert all_pass < 1.0 - 1e-9

    def test_injector_entry_point(self):
        injector = AssertionInjector(ghz_state(3))
        records = injector.assert_ghz([0, 1, 2])
        assert len(records) == 3
        assert injector.num_ancillas == 3


class TestEqualityAssertion:
    def test_equal_states_never_trip(self):
        qc = QuantumCircuit(2)
        qc.ry(0.9, 0)
        qc.ry(0.9, 1)
        append_equality_assertion(qc, 0, 1)
        assert SIM.exact_probabilities(qc) == {"0": pytest.approx(1.0)}

    def test_orthogonal_states_trip_half(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        append_equality_assertion(qc, 0, 1)
        probs = SIM.exact_probabilities(qc)
        assert probs["1"] == pytest.approx(0.5)

    @given(
        theta_a=st.floats(min_value=0.0, max_value=math.pi),
        theta_b=st.floats(min_value=0.0, max_value=math.pi),
    )
    @settings(max_examples=30, deadline=None)
    def test_error_probability_formula(self, theta_a, theta_b):
        """P(error) = (1 - |<a|b>|^2) / 2."""
        qc = QuantumCircuit(2)
        qc.ry(theta_a, 0)
        qc.ry(theta_b, 1)
        append_equality_assertion(qc, 0, 1)
        probs = SIM.exact_probabilities(qc)
        overlap = math.cos((theta_a - theta_b) / 2.0) ** 2
        assert probs.get("1", 0.0) == pytest.approx((1 - overlap) / 2, abs=1e-9)

    def test_distinct_qubits_required(self):
        with pytest.raises(AssertionCircuitError, match="distinct"):
            append_equality_assertion(QuantumCircuit(1), 0, 0)

    def test_injector_entry_point(self):
        injector = AssertionInjector(QuantumCircuit(2))
        record = injector.assert_equal(0, 1)
        assert record.qubits == (0, 1)
        assert record.label == "equal(0,1)"
