"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.backend import StatevectorBackend
from repro.devices.ibmqx4 import ibmqx4
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.statevector import StatevectorSimulator


@pytest.fixture
def sv_sim() -> StatevectorSimulator:
    """A fresh statevector simulator."""
    return StatevectorSimulator()


@pytest.fixture
def dm_sim() -> DensityMatrixSimulator:
    """A fresh (noise-free) density-matrix simulator."""
    return DensityMatrixSimulator()


@pytest.fixture
def stab_sim() -> StabilizerSimulator:
    """A fresh stabilizer simulator."""
    return StabilizerSimulator()


@pytest.fixture
def sv_backend() -> StatevectorBackend:
    """An ideal statevector backend."""
    return StatevectorBackend()


@pytest.fixture(scope="session")
def ibmqx4_device():
    """The ibmqx4 device model (session-scoped; it is immutable)."""
    return ibmqx4()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded RNG for deterministic tests."""
    return np.random.default_rng(1234)
