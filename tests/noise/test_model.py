"""Tests for NoiseModel construction and queries."""

import numpy as np
import pytest

from repro.circuits.gates import get_gate
from repro.circuits.instructions import Instruction
from repro.exceptions import NoiseError
from repro.noise.channels import bit_flip, depolarizing, two_qubit_depolarizing
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError


def cx_instruction(control=0, target=1):
    return Instruction(get_gate("cx"), (control, target))


def x_instruction(qubit=0):
    return Instruction(get_gate("x"), (qubit,))


class TestGateErrors:
    def test_all_qubit_error_matches_any_operands(self):
        model = NoiseModel().add_all_qubit_gate_error(["x"], bit_flip(0.1))
        assert len(model.channels_for(x_instruction(0))) == 1
        assert len(model.channels_for(x_instruction(5))) == 1

    def test_specific_error_matches_exact_tuple(self):
        model = NoiseModel().add_gate_error("cx", (0, 1), two_qubit_depolarizing(0.1))
        assert len(model.channels_for(cx_instruction(0, 1))) == 1
        assert model.channels_for(cx_instruction(1, 0)) == []

    def test_unlisted_gate_is_clean(self):
        model = NoiseModel().add_all_qubit_gate_error(["x"], bit_flip(0.1))
        assert model.channels_for(Instruction(get_gate("h"), (0,))) == []

    def test_one_qubit_channel_on_two_qubit_gate_fans_out(self):
        model = NoiseModel().add_all_qubit_gate_error(["cx"], depolarizing(0.1))
        channels = model.channels_for(cx_instruction(2, 3))
        targets = [t for _, t in channels]
        assert targets == [(2,), (3,)]

    def test_matching_arity_channel_applies_once(self):
        model = NoiseModel().add_all_qubit_gate_error(
            ["cx"], two_qubit_depolarizing(0.1)
        )
        channels = model.channels_for(cx_instruction(2, 3))
        assert [t for _, t in channels] == [(2, 3)]

    def test_bad_arity_rejected_at_query(self):
        model = NoiseModel().add_all_qubit_gate_error(
            ["x"], two_qubit_depolarizing(0.1)
        )
        with pytest.raises(NoiseError, match="acts on 2"):
            model.channels_for(x_instruction())

    def test_stacked_errors_all_returned(self):
        model = NoiseModel()
        model.add_all_qubit_gate_error(["x"], bit_flip(0.1))
        model.add_gate_error("x", (0,), bit_flip(0.2))
        assert len(model.channels_for(x_instruction(0))) == 2
        assert len(model.channels_for(x_instruction(1))) == 1


class TestReadoutErrors:
    def test_per_qubit_confusion(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.1, 0.05), qubit=2)
        matrix = model.readout_confusion(2)
        assert matrix[0][1] == pytest.approx(0.1)
        assert matrix[1][0] == pytest.approx(0.05)
        assert model.readout_confusion(0) is None

    def test_default_readout(self):
        model = NoiseModel().add_readout_error(ReadoutError.symmetric(0.04))
        assert model.readout_confusion(7) is not None

    def test_specific_overrides_default(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError.symmetric(0.5))
        model.add_readout_error(ReadoutError(0.0, 0.0), qubit=1)
        np.testing.assert_allclose(model.readout_confusion(1), np.eye(2))

    def test_readout_error_object_accessor(self):
        error = ReadoutError(0.1, 0.2)
        model = NoiseModel().add_readout_error(error, qubit=0)
        assert model.readout_error(0) is error


class TestIntrospection:
    def test_is_ideal(self):
        assert NoiseModel().is_ideal()
        assert not NoiseModel().add_readout_error(ReadoutError(0.1, 0.1)).is_ideal()

    def test_noisy_gates_listing(self):
        model = NoiseModel()
        model.add_all_qubit_gate_error(["cx", "x"], depolarizing(0.01))
        assert model.noisy_gates == ["cx", "x"]

    def test_repr_smoke(self):
        model = NoiseModel("demo").add_all_qubit_gate_error(["x"], bit_flip(0.1))
        assert "demo" in repr(model)
