"""Tests for the ReadoutError confusion matrix."""

import numpy as np
import pytest

from repro.exceptions import NoiseError
from repro.noise.readout import ReadoutError


class TestConstruction:
    def test_probability_bounds(self):
        with pytest.raises(NoiseError):
            ReadoutError(1.2, 0.0)
        with pytest.raises(NoiseError):
            ReadoutError(0.0, -0.1)

    def test_symmetric_factory(self):
        error = ReadoutError.symmetric(0.07)
        assert error.p0_given_1 == pytest.approx(0.07)
        assert error.p1_given_0 == pytest.approx(0.07)


class TestMatrix:
    def test_columns_are_stochastic(self):
        matrix = ReadoutError(0.1, 0.03).matrix
        np.testing.assert_allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_matrix_entries(self):
        matrix = ReadoutError(0.1, 0.03).matrix
        assert matrix[0, 1] == pytest.approx(0.1)   # P(record 0 | true 1)
        assert matrix[1, 0] == pytest.approx(0.03)  # P(record 1 | true 0)

    def test_apply_to_distribution(self):
        error = ReadoutError(0.2, 0.1)
        out = error.apply_to_distribution([1.0, 0.0])
        np.testing.assert_allclose(out, [0.9, 0.1])

    def test_apply_requires_length_two(self):
        with pytest.raises(NoiseError):
            ReadoutError(0.1, 0.1).apply_to_distribution([1.0, 0.0, 0.0])

    def test_assignment_fidelity(self):
        assert ReadoutError(0.1, 0.05).assignment_fidelity() == pytest.approx(0.925)

    def test_scaled_clips_at_one(self):
        scaled = ReadoutError(0.6, 0.5).scaled(3.0)
        assert scaled.p0_given_1 == 1.0
        assert scaled.p1_given_0 == 1.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(NoiseError):
            ReadoutError(0.1, 0.1).scaled(-1.0)

    def test_repr(self):
        assert "0.1" in repr(ReadoutError(0.1, 0.05))
