"""Tests for the Monte-Carlo trajectory engine."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.noise.channels import amplitude_damping, bit_flip, depolarizing
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.noise.trajectories import TrajectorySimulator
from repro.simulators.density_matrix import DensityMatrixSimulator


class TestIdealBehaviour:
    def test_matches_ideal_distribution(self):
        qc = library.bell_pair()
        qc.measure_all()
        result = TrajectorySimulator().run(qc, shots=4000, seed=1)
        assert set(result.counts) == {"00", "11"}
        assert abs(result.counts["00"] / 4000 - 0.5) < 0.05

    def test_conditionals(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.measure(0, 0)
        qc.x(1, condition=(0, 1))
        qc.measure(1, 1)
        assert TrajectorySimulator().run(qc, shots=50, seed=2).counts == {"11": 50}

    def test_reset(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        assert TrajectorySimulator().run(qc, shots=50, seed=3).counts == {"0": 50}


class TestNoisyConvergence:
    def _compare_to_exact(self, circuit, model, shots=6000, tol=0.05, seed=11):
        exact = DensityMatrixSimulator(noise_model=model).run(circuit, shots=1)
        sampled = TrajectorySimulator(noise_model=model).run(
            circuit, shots=shots, seed=seed
        )
        for key, p in exact.probabilities.items():
            assert abs(sampled.counts.get(key, 0) / shots - p) < tol

    def test_bit_flip_convergence(self):
        model = NoiseModel().add_all_qubit_gate_error(["x"], bit_flip(0.3))
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        self._compare_to_exact(qc, model)

    def test_depolarizing_convergence(self):
        model = NoiseModel().add_all_qubit_gate_error(["h", "cx"], depolarizing(0.1))
        qc = library.bell_pair()
        qc.measure_all()
        self._compare_to_exact(qc, model)

    def test_amplitude_damping_convergence(self):
        model = NoiseModel().add_all_qubit_gate_error(["x"], amplitude_damping(0.4))
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        self._compare_to_exact(qc, model)

    def test_readout_error_convergence(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.1, 0.05))
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        self._compare_to_exact(qc, model)

    def test_seeded_runs_reproducible(self):
        model = NoiseModel().add_all_qubit_gate_error(["h"], depolarizing(0.2))
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        sim = TrajectorySimulator(noise_model=model)
        assert dict(sim.run(qc, shots=500, seed=7).counts) == dict(
            sim.run(qc, shots=500, seed=7).counts
        )
