"""Tests for Kraus channels: CPTP validity and physical behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoiseError
from repro.noise import channels as ch

PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def apply_channel(channel, rho):
    return sum(k @ rho @ k.conj().T for k in channel)


class TestKrausChannelClass:
    def test_requires_operators(self):
        with pytest.raises(NoiseError, match="at least one"):
            ch.KrausChannel([])

    def test_requires_completeness(self):
        with pytest.raises(NoiseError, match="completeness"):
            ch.KrausChannel([0.5 * np.eye(2)])

    def test_requires_square_equal_shapes(self):
        with pytest.raises(NoiseError):
            ch.KrausChannel([np.eye(2), np.eye(4)])

    def test_power_of_two_dimension(self):
        with pytest.raises(NoiseError, match="power of two"):
            ch.KrausChannel([np.eye(3)])

    def test_compose_matches_sequential_application(self):
        first = ch.bit_flip(0.3)
        second = ch.phase_flip(0.2)
        composed = first.compose(second)
        rho = np.array([[0.7, 0.3], [0.3, 0.3]], dtype=complex)
        sequential = apply_channel(second, apply_channel(first, rho))
        np.testing.assert_allclose(apply_channel(composed, rho), sequential, atol=1e-12)

    def test_compose_arity_checked(self):
        with pytest.raises(NoiseError):
            ch.bit_flip(0.1).compose(ch.two_qubit_depolarizing(0.1))

    def test_unital_check(self):
        assert ch.depolarizing(0.3).is_unital()
        assert not ch.amplitude_damping(0.3).is_unital()


class TestChannelsAreCPTP:
    @given(p=PROBS)
    @settings(max_examples=30, deadline=None)
    def test_all_single_qubit_channels(self, p):
        for factory in (
            ch.bit_flip,
            ch.phase_flip,
            ch.bit_phase_flip,
            ch.depolarizing,
            ch.amplitude_damping,
            ch.phase_damping,
        ):
            channel = factory(p)  # constructor itself validates completeness
            assert len(channel) >= 1

    @given(p=PROBS)
    @settings(max_examples=20, deadline=None)
    def test_two_qubit_depolarizing(self, p):
        channel = ch.two_qubit_depolarizing(p)
        assert channel.num_qubits == 2

    @given(px=PROBS, py=PROBS, pz=PROBS)
    @settings(max_examples=30, deadline=None)
    def test_pauli_channel(self, px, py, pz):
        total = px + py + pz
        if total > 1.0:
            with pytest.raises(NoiseError):
                ch.pauli_channel(px, py, pz)
        else:
            assert ch.pauli_channel(px, py, pz).num_qubits == 1

    def test_probability_range_validated(self):
        with pytest.raises(NoiseError):
            ch.bit_flip(1.5)
        with pytest.raises(NoiseError):
            ch.depolarizing(-0.1)


class TestChannelPhysics:
    def test_depolarizing_limit_is_maximally_mixed(self):
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = apply_channel(ch.depolarizing(1.0), rho)
        np.testing.assert_allclose(out, np.eye(2) / 2, atol=1e-12)

    def test_bit_flip_action(self):
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = apply_channel(ch.bit_flip(0.3), rho)
        assert out[1, 1] == pytest.approx(0.3)

    def test_amplitude_damping_decays_excited_state(self):
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = apply_channel(ch.amplitude_damping(0.4), rho)
        assert out[0, 0] == pytest.approx(0.4)
        assert out[1, 1] == pytest.approx(0.6)

    def test_amplitude_damping_fixes_ground_state(self):
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = apply_channel(ch.amplitude_damping(0.7), rho)
        np.testing.assert_allclose(out, rho, atol=1e-12)

    def test_phase_damping_kills_coherence_keeps_populations(self):
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = apply_channel(ch.phase_damping(1.0), rho)
        assert out[0, 1] == pytest.approx(0.0)
        assert out[0, 0] == pytest.approx(0.5)

    def test_two_qubit_depolarizing_limit(self):
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        out = apply_channel(ch.two_qubit_depolarizing(1.0), rho)
        np.testing.assert_allclose(out, np.eye(4) / 4, atol=1e-12)


class TestThermalRelaxation:
    def test_t1_decay_rate(self):
        t1, t = 100.0, 30.0
        channel = ch.thermal_relaxation(t1, t1, t)  # T2 = T1
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = apply_channel(channel, rho)
        assert out[1, 1] == pytest.approx(math.exp(-t / t1), abs=1e-9)

    def test_t2_coherence_decay(self):
        t1, t2, t = 100.0, 60.0, 25.0
        channel = ch.thermal_relaxation(t1, t2, t)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = apply_channel(channel, rho)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-t / t2), abs=1e-9)

    def test_zero_time_is_identity(self):
        channel = ch.thermal_relaxation(50.0, 40.0, 0.0)
        rho = np.array([[0.2, 0.1j], [-0.1j, 0.8]], dtype=complex)
        np.testing.assert_allclose(apply_channel(channel, rho), rho, atol=1e-9)

    def test_t2_bound_enforced(self):
        with pytest.raises(NoiseError, match="physical limit"):
            ch.thermal_relaxation(10.0, 25.0, 1.0)

    def test_positive_times_required(self):
        with pytest.raises(NoiseError):
            ch.thermal_relaxation(-1.0, 1.0, 1.0)

    def test_excited_population_steady_state(self):
        channel = ch.thermal_relaxation(10.0, 10.0, 1e6, excited_population=0.2)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = apply_channel(channel, rho)
        assert out[1, 1] == pytest.approx(0.2, abs=1e-6)
