"""Tests for single-qubit tomography (the baseline's multi-basis cost)."""

import math

import numpy as np
import pytest

from repro.analysis.states import state_fidelity
from repro.analysis.tomography import (
    measurement_bases_circuits,
    reconstruct_single_qubit_state,
)
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import StatevectorBackend
from repro.exceptions import AnalysisError
from repro.results.counts import Counts


def tomograph(program, qubit=0, shots=8192, seed=5):
    backend = StatevectorBackend()
    variants = measurement_bases_circuits(program, qubit)
    return {
        basis: backend.run(circ, shots=shots, seed=seed).counts
        for basis, circ in variants.items()
    }


class TestBasisCircuits:
    def test_three_bases_produced(self):
        variants = measurement_bases_circuits(QuantumCircuit(1), 0)
        assert set(variants) == {"x", "y", "z"}

    def test_each_variant_measures(self):
        variants = measurement_bases_circuits(QuantumCircuit(1), 0)
        for circ in variants.values():
            assert circ.has_measurements()

    def test_original_untouched(self):
        program = QuantumCircuit(1)
        measurement_bases_circuits(program, 0)
        assert len(program) == 0

    def test_qubit_validated(self):
        with pytest.raises(AnalysisError):
            measurement_bases_circuits(QuantumCircuit(1), 5)


class TestReconstruction:
    @pytest.mark.parametrize(
        "prep,target",
        [
            (lambda qc: None, np.array([1, 0], dtype=complex)),
            (lambda qc: qc.x(0), np.array([0, 1], dtype=complex)),
            (lambda qc: qc.h(0), np.array([1, 1], dtype=complex) / math.sqrt(2)),
            (
                lambda qc: (qc.h(0), qc.s(0)),
                np.array([1, 1j], dtype=complex) / math.sqrt(2),
            ),
        ],
        ids=["zero", "one", "plus", "plus_i"],
    )
    def test_known_states_recovered(self, prep, target):
        program = QuantumCircuit(1)
        prep(program)
        rho = reconstruct_single_qubit_state(tomograph(program))
        assert state_fidelity(rho, target) > 0.99

    def test_missing_basis_rejected(self):
        with pytest.raises(AnalysisError, match="missing"):
            reconstruct_single_qubit_state({"z": Counts({"0": 10})})

    def test_empty_counts_rejected(self):
        with pytest.raises(AnalysisError, match="empty"):
            reconstruct_single_qubit_state(
                {"x": Counts(), "y": Counts(), "z": Counts()}
            )

    def test_result_is_physical(self):
        program = QuantumCircuit(1)
        program.h(0)
        rho = reconstruct_single_qubit_state(tomograph(program, shots=200))
        eigenvalues = np.linalg.eigvalsh(rho)
        assert (eigenvalues >= -1e-10).all()
        assert np.trace(rho) == pytest.approx(1.0)
