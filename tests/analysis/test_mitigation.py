"""Tests for readout-error mitigation (the classical baseline)."""

import numpy as np
import pytest

from repro.analysis.mitigation import (
    calibrate_and_mitigate,
    calibration_circuits,
    confusion_matrix_from_calibration,
    mitigate_counts,
)
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import AnalysisError
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.results.counts import Counts
from repro.simulators.density_matrix import DensityMatrixSimulator


class _NoisyReadoutBackend:
    """Minimal backend with only readout error on every qubit."""

    def __init__(self, p0_given_1=0.08, p1_given_0=0.03):
        model = NoiseModel("ro").add_readout_error(
            ReadoutError(p0_given_1, p1_given_0)
        )
        self._sim = DensityMatrixSimulator(noise_model=model)

    def run(self, circuit, shots=1024, seed=None):
        return self._sim.run(circuit, shots=shots, seed=seed)


class TestCalibrationCircuits:
    def test_all_basis_states_present(self):
        circuits = calibration_circuits([0, 1], num_qubits=3)
        assert set(circuits) == {"00", "01", "10", "11"}

    def test_preparation_gates(self):
        circuits = calibration_circuits([0, 2], num_qubits=3)
        prep_10 = circuits["10"]
        x_targets = [inst.qubits[0] for inst in prep_10 if inst.name == "x"]
        assert x_targets == [0]

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(AnalysisError):
            calibration_circuits([0, 0], num_qubits=2)

    def test_size_cap(self):
        with pytest.raises(AnalysisError, match="impractical"):
            calibration_circuits(list(range(11)), num_qubits=11)


class TestConfusionMatrix:
    def test_ideal_calibration_gives_identity(self):
        calibration = {
            "0": Counts({"0": 100}),
            "1": Counts({"1": 100}),
        }
        np.testing.assert_allclose(
            confusion_matrix_from_calibration(calibration), np.eye(2)
        )

    def test_columns_stochastic(self):
        calibration = {
            "0": Counts({"0": 95, "1": 5}),
            "1": Counts({"0": 8, "1": 92}),
        }
        matrix = confusion_matrix_from_calibration(calibration)
        np.testing.assert_allclose(matrix.sum(axis=0), [1.0, 1.0])
        assert matrix[1, 0] == pytest.approx(0.05)

    def test_missing_states_rejected(self):
        with pytest.raises(AnalysisError, match="basis states"):
            confusion_matrix_from_calibration({"00": Counts({"00": 1})})

    def test_empty_calibration_rejected(self):
        with pytest.raises(AnalysisError):
            confusion_matrix_from_calibration({})

    def test_zero_shot_state_rejected(self):
        with pytest.raises(AnalysisError, match="no shots"):
            confusion_matrix_from_calibration(
                {"0": Counts({"0": 1}), "1": Counts()}
            )


class TestMitigateCounts:
    def test_exact_inversion(self):
        # True distribution (0.9, 0.1) pushed through a known confusion.
        confusion = np.array([[0.95, 0.08], [0.05, 0.92]])
        true = np.array([0.9, 0.1])
        observed = confusion @ true
        counts = Counts(
            {"0": int(round(observed[0] * 10000)), "1": int(round(observed[1] * 10000))}
        )
        mitigated = mitigate_counts(counts, confusion)
        assert mitigated["0"] == pytest.approx(0.9, abs=1e-3)
        assert mitigated["1"] == pytest.approx(0.1, abs=1e-3)

    def test_negative_quasiprobabilities_clipped(self):
        confusion = np.array([[0.9, 0.1], [0.1, 0.9]])
        counts = Counts({"0": 100})  # more extreme than the model allows
        mitigated = mitigate_counts(counts, confusion)
        assert all(p >= 0 for p in mitigated.values())
        assert sum(mitigated.values()) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="match"):
            mitigate_counts(Counts({"00": 1}), np.eye(2))

    def test_empty_counts_rejected(self):
        with pytest.raises(AnalysisError):
            mitigate_counts(Counts(), np.eye(1))

    def test_singular_matrix_rejected(self):
        singular = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(AnalysisError, match="singular"):
            mitigate_counts(Counts({"0": 1}), singular)


class TestEndToEnd:
    def test_recovers_true_distribution_under_readout_noise(self):
        backend = _NoisyReadoutBackend()
        # Program: |1> on qubit 0; readout noise biases it toward 0.
        program = QuantumCircuit(1, 1)
        program.x(0)
        program.measure(0, 0)
        raw = backend.run(program, shots=8192, seed=3).counts
        assert raw.probability_of("1") < 0.96  # visibly degraded
        mitigated = calibrate_and_mitigate(
            backend, [0], num_qubits=1, counts=raw, shots=8192, seed=4
        )
        assert mitigated.get("1", 0.0) > 0.99

    def test_two_qubit_bell_mitigation(self):
        from repro.circuits.library import bell_pair

        backend = _NoisyReadoutBackend()
        program = bell_pair()
        program.measure_all()
        raw = backend.run(program, shots=8192, seed=5).counts
        mitigated = calibrate_and_mitigate(
            backend, [0, 1], num_qubits=2, counts=raw, shots=8192, seed=6
        )
        bell_mass = mitigated.get("00", 0) + mitigated.get("11", 0)
        raw_bell_mass = raw.probability_of("00") + raw.probability_of("11")
        assert bell_mass > raw_bell_mass
        assert bell_mass > 0.99
