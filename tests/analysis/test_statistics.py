"""Tests for the statistical machinery behind the baseline assertions."""

import pytest

from repro.analysis.statistics import (
    chi_square_contingency,
    chi_square_goodness_of_fit,
    wilson_interval,
)
from repro.exceptions import AnalysisError
from repro.results.counts import Counts


class TestGoodnessOfFit:
    def test_perfect_fit_high_p(self):
        counts = Counts({"0": 500, "1": 500})
        stat, p = chi_square_goodness_of_fit(counts, {"0": 0.5, "1": 0.5})
        assert stat == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_gross_mismatch_low_p(self):
        counts = Counts({"0": 900, "1": 100})
        _stat, p = chi_square_goodness_of_fit(counts, {"0": 0.5, "1": 0.5})
        assert p < 1e-10

    def test_impossible_outcome_gives_zero_p(self):
        counts = Counts({"0": 90, "1": 10})
        stat, p = chi_square_goodness_of_fit(counts, {"0": 1.0, "1": 0.0})
        assert stat == float("inf")
        assert p == 0.0

    def test_empty_histogram_rejected(self):
        with pytest.raises(AnalysisError):
            chi_square_goodness_of_fit(Counts(), {"0": 1.0})

    def test_unnormalised_expectation_rejected(self):
        with pytest.raises(AnalysisError, match="sum"):
            chi_square_goodness_of_fit(Counts({"0": 10}), {"0": 0.5})

    def test_sampling_noise_tolerated(self):
        counts = Counts({"0": 520, "1": 480})
        _stat, p = chi_square_goodness_of_fit(counts, {"0": 0.5, "1": 0.5})
        assert p > 0.05


class TestContingency:
    def test_correlated_bits_rejected_independence(self):
        counts = Counts({"00": 500, "11": 500})
        _stat, p = chi_square_contingency(counts, 0, 1)
        assert p < 1e-10

    def test_independent_bits_high_p(self):
        counts = Counts({"00": 250, "01": 250, "10": 250, "11": 250})
        stat, p = chi_square_contingency(counts, 0, 1)
        assert stat == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_constant_bit_degenerate(self):
        counts = Counts({"00": 500, "01": 500})
        stat, p = chi_square_contingency(counts, 0, 1)
        assert (stat, p) == (0.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            chi_square_contingency(Counts(), 0, 1)

    def test_anticorrelated_detected(self):
        counts = Counts({"01": 480, "10": 520})
        _stat, p = chi_square_contingency(counts, 0, 1)
        assert p < 1e-10


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_shrinks_with_trials(self):
        low1, high1 = wilson_interval(30, 100)
        low2, high2 = wilson_interval(300, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_bounds_clipped(self):
        low, high = wilson_interval(0, 10)
        assert low == pytest.approx(0.0, abs=1e-12)
        low, high = wilson_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(5, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(11, 10)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 10, confidence=1.5)
