"""Tests for state analysis: fidelity, traces, entropies, entanglement."""

import math

import numpy as np
import pytest

from repro.analysis.states import (
    concurrence,
    entanglement_entropy,
    is_maximally_entangled_pair,
    partial_trace,
    pauli_expectation,
    purity,
    schmidt_coefficients,
    state_fidelity,
    von_neumann_entropy,
)
from repro.exceptions import AnalysisError
from repro.simulators.statevector import Statevector

BELL = np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)


class TestFidelity:
    def test_identical_pure_states(self):
        assert state_fidelity(BELL, BELL) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        zero = np.array([1, 0], dtype=complex)
        one = np.array([0, 1], dtype=complex)
        assert state_fidelity(zero, one) == pytest.approx(0.0, abs=1e-9)

    def test_pure_overlap(self):
        zero = np.array([1, 0], dtype=complex)
        plus = np.array([1, 1], dtype=complex) / math.sqrt(2)
        assert state_fidelity(zero, plus) == pytest.approx(0.5)

    def test_mixed_vs_pure(self):
        mixed = np.eye(2) / 2
        zero = np.array([1, 0], dtype=complex)
        assert state_fidelity(mixed, zero) == pytest.approx(0.5)

    def test_accepts_wrapper_objects(self):
        sv = Statevector.from_label("0")
        assert state_fidelity(sv, np.array([1, 0], dtype=complex)) == pytest.approx(1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(AnalysisError):
            state_fidelity(np.array([1, 0]), BELL)

    def test_symmetry(self):
        rho = np.diag([0.7, 0.3]).astype(complex)
        sigma = np.array([[0.5, 0.2], [0.2, 0.5]], dtype=complex)
        assert state_fidelity(rho, sigma) == pytest.approx(
            state_fidelity(sigma, rho)
        )


class TestPartialTrace:
    def test_product_state_factors(self):
        state = np.kron(np.array([1, 0]), np.array([1, 1]) / math.sqrt(2))
        reduced = partial_trace(state, keep=[1])
        np.testing.assert_allclose(reduced, np.full((2, 2), 0.5), atol=1e-12)

    def test_bell_reduction_is_mixed(self):
        reduced = partial_trace(BELL, keep=[0])
        np.testing.assert_allclose(reduced, np.eye(2) / 2, atol=1e-12)

    def test_keep_order_respected(self):
        # |01>: keep [1, 0] must give |10>-ordered state.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # |01>
        reduced = partial_trace(state, keep=[1, 0])
        expected = np.zeros((4, 4), dtype=complex)
        expected[2, 2] = 1.0  # |10>
        np.testing.assert_allclose(reduced, expected, atol=1e-12)

    def test_keep_all_is_identity_operation(self):
        rho = np.outer(BELL, BELL.conj())
        np.testing.assert_allclose(partial_trace(BELL, [0, 1]), rho, atol=1e-12)

    def test_invalid_qubit(self):
        with pytest.raises(AnalysisError):
            partial_trace(BELL, keep=[3])

    def test_duplicates_rejected(self):
        with pytest.raises(AnalysisError):
            partial_trace(BELL, keep=[0, 0])


class TestEntropies:
    def test_pure_state_entropy_zero(self):
        assert von_neumann_entropy(BELL) == pytest.approx(0.0, abs=1e-9)

    def test_maximally_mixed_entropy_one_bit(self):
        assert von_neumann_entropy(np.eye(2) / 2) == pytest.approx(1.0)

    def test_bell_entanglement_entropy(self):
        assert entanglement_entropy(BELL, [0]) == pytest.approx(1.0)

    def test_product_state_entanglement_zero(self):
        state = np.kron([1, 0], [1, 0]).astype(complex)
        assert entanglement_entropy(state, [0]) == pytest.approx(0.0, abs=1e-9)

    def test_purity(self):
        assert purity(BELL) == pytest.approx(1.0)
        assert purity(np.eye(4) / 4) == pytest.approx(0.25)


class TestSchmidt:
    def test_bell_has_two_equal_coefficients(self):
        coeffs = schmidt_coefficients(BELL, [0])
        np.testing.assert_allclose(sorted(coeffs), [1 / math.sqrt(2)] * 2, atol=1e-12)

    def test_product_state_single_coefficient(self):
        state = np.kron([1, 0], [1, 1] / np.sqrt(2)).astype(complex)
        coeffs = schmidt_coefficients(state, [0])
        assert len(coeffs) == 1
        assert coeffs[0] == pytest.approx(1.0)

    def test_requires_pure_state(self):
        with pytest.raises(AnalysisError):
            schmidt_coefficients(np.eye(2) / 2, [0])


class TestConcurrence:
    def test_bell_is_maximal(self):
        assert concurrence(BELL) == pytest.approx(1.0)

    def test_product_state_zero(self):
        state = np.kron([1, 0], [0, 1]).astype(complex)
        assert concurrence(state) == pytest.approx(0.0, abs=1e-9)

    def test_partially_entangled(self):
        a, b = 0.9, math.sqrt(1 - 0.81)
        state = np.array([a, 0, 0, b], dtype=complex)
        assert concurrence(state) == pytest.approx(2 * a * b)

    def test_wrong_dimension_rejected(self):
        with pytest.raises(AnalysisError):
            concurrence(np.array([1, 0], dtype=complex))

    def test_maximally_entangled_check(self):
        assert is_maximally_entangled_pair(BELL)
        product = np.kron([1, 0], [1, 0]).astype(complex)
        assert not is_maximally_entangled_pair(product)


class TestPauliExpectation:
    def test_z_on_basis_states(self):
        assert pauli_expectation(np.array([1, 0], dtype=complex), "Z") == pytest.approx(1.0)
        assert pauli_expectation(np.array([0, 1], dtype=complex), "Z") == pytest.approx(-1.0)

    def test_x_on_plus(self):
        plus = np.array([1, 1], dtype=complex) / math.sqrt(2)
        assert pauli_expectation(plus, "X") == pytest.approx(1.0)

    def test_bell_stabilizers(self):
        assert pauli_expectation(BELL, "XX") == pytest.approx(1.0)
        assert pauli_expectation(BELL, "ZZ") == pytest.approx(1.0)
        assert pauli_expectation(BELL, "ZI") == pytest.approx(0.0, abs=1e-12)

    def test_length_validated(self):
        with pytest.raises(AnalysisError):
            pauli_expectation(BELL, "Z")

    def test_unknown_label(self):
        with pytest.raises(AnalysisError):
            pauli_expectation(BELL, "QQ")
