"""Graceful degradation: health reporting, load shedding, drain/resume,
the wire's ``/v1/health`` + ``Retry-After`` contract, connection-level
chaos, and the client's bounded retry policy."""

import asyncio
import threading

import pytest

from repro import faults
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import CircuitOpen, ServiceOverloaded
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import register_backend
from repro.service import (
    BackgroundServer,
    QuotaExceeded,
    RuntimeService,
    ServiceClient,
)


class CountingBackend(Backend):
    name = "counting"

    def run(self, circuit, shots=1024, seed=None):
        key = format((seed or 0) % 4, "02b")
        return Result(counts=Counts({key: shots}), shots=shots)


class BlockingBackend(Backend):
    """Holds every run() until released, to pile work up deterministically."""

    name = "blocking"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, circuit, shots=1024, seed=None):
        self.started.set()
        assert self.release.wait(timeout=30)
        return Result(counts=Counts({"0": shots}), shots=shots)


class SickBackend(Backend):
    name = "sick"

    def run(self, circuit, shots=1024, seed=None):
        raise RuntimeError("device offline")


def named_circuit(name="probe"):
    circuit = QuantumCircuit(1, name=name)
    circuit.measure_all()
    return circuit


@pytest.fixture(autouse=True)
def no_ambient_faults():
    faults.deactivate()
    yield
    faults.deactivate()


async def poll(predicate, timeout=10.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never met"
        await asyncio.sleep(interval)


class TestHealth:
    def test_healthy_service_reports_ok(self):
        async def main():
            service = RuntimeService(executor="thread")
            try:
                report = service.health()
                assert report["status"] == "ok"
                assert report["ready"] is True
                assert report["draining"] is False
                assert report["queued_batches"] == 0
                assert report["max_queue_depth"] is None
                assert report["open_breakers"] == []
                assert "retry_after" not in report
                assert report["pools"].keys() == {"active", "rebuilds"}
            finally:
                await service.close()

        asyncio.run(main())

    def test_open_breaker_degrades_but_stays_ready(self):
        async def main():
            service = RuntimeService(
                executor="thread",
                breaker=dict(failure_threshold=1.0, min_samples=2, window=4,
                             cooldown_s=60.0),
            )
            try:
                for _ in range(2):
                    handle = await service.submit(
                        named_circuit(), SickBackend(), shots=1, retry=False
                    )
                    await handle.wait(timeout=30)
                # Outcomes land when the scheduler reaps the batch.
                await poll(lambda: service.health()["open_breakers"])
                report = service.health()
                assert report["open_breakers"] == ["sick"]
                assert report["status"] == "degraded"
                assert report["ready"] is True  # other backends still fine
                assert report["breakers"]["sick"]["state"] == "open"
                with pytest.raises(CircuitOpen) as info:
                    await service.submit(named_circuit(), SickBackend(),
                                         shots=1, retry=False)
                assert info.value.backend == "sick"
                assert info.value.retry_after > 0
            finally:
                await service.close()

        asyncio.run(main())


class TestLoadShedding:
    def test_queue_watermark_sheds_with_typed_overload(self):
        async def main():
            backend = BlockingBackend()
            service = RuntimeService(executor="thread", max_in_flight=1,
                                     max_queue_depth=1)
            try:
                first = await service.submit(named_circuit("a"), backend,
                                             shots=4)
                # Wait until it occupies the (single) in-flight slot, so
                # the next submission stays queued rather than dispatched.
                await poll(lambda: backend.started.is_set())
                await poll(
                    lambda: service.stats()["queued_batches"] == 0
                    and service.stats()["in_flight_jobs"] == 1
                )
                second = await service.submit(named_circuit("b"), backend,
                                              shots=4)
                with pytest.raises(ServiceOverloaded) as info:
                    await service.submit(named_circuit("c"), backend, shots=4)
                assert info.value.queue_depth == 1
                assert info.value.limit == 1
                assert info.value.reason == "queue_depth"
                assert info.value.retry_after == 1.0
                report = service.health()
                assert report["status"] == "degraded"
                assert report["ready"] is False
                assert report["retry_after"] == 1.0
                stats = service.stats()["clients"]["anonymous"]
                assert stats["rejected_overload"] == 1
                # Shedding happens before admission math: the rejection
                # never touched the quota/rate machinery.
                assert stats["rejected_rate"] == 0
                assert stats["rejected_quota"] == 0
                backend.release.set()
                await first.wait(timeout=30)
                await second.wait(timeout=30)
                await poll(lambda: service.health()["ready"])
            finally:
                backend.release.set()
                await service.close()

        asyncio.run(main())


class TestDrainAndResume:
    def test_drain_summary_then_resume_reopens(self):
        async def main():
            service = RuntimeService(executor="thread")
            try:
                handle = await service.submit(named_circuit(),
                                              CountingBackend(), shots=8,
                                              seed=1)
                summary = await service.drain(timeout=30)
                assert summary == {
                    "settled": True,
                    "queued_batches": 0,
                    "in_flight_jobs": 0,
                    "unsettled_records": 0,
                }
                assert handle.status() == "done"
                report = service.health()
                assert report["status"] == "draining"
                assert report["ready"] is False
                assert report["retry_after"] == 5.0
                with pytest.raises(ServiceOverloaded) as info:
                    await service.submit(named_circuit(), CountingBackend(),
                                         shots=8)
                assert info.value.reason == "draining"
                assert info.value.retry_after == 5.0
                service.resume()
                assert service.health()["status"] == "ok"
                reopened = await service.submit(named_circuit(),
                                                CountingBackend(), shots=8,
                                                seed=2)
                await reopened.wait(timeout=30)
                assert reopened.status() == "done"
            finally:
                await service.close()

        asyncio.run(main())


class TestHealthOverTheWire:
    def test_health_endpoint_needs_no_auth_and_flips_to_503(self):
        service = RuntimeService(executor="thread", allow_anonymous=False)
        service.register_client("alice", token="tok-alice")
        with BackgroundServer(service) as server:
            with ServiceClient(server.url) as client:  # deliberately no token
                report = client.health()
                assert report["ready"] is True
                assert report["status"] == "ok"
                asyncio.run_coroutine_threadsafe(
                    service.drain(timeout=30), server._loop
                ).result(timeout=60)
                degraded = client.health()  # the 503 report, not a raise
                assert degraded["ready"] is False
                assert degraded["status"] == "draining"
                assert degraded["retry_after"] == 5.0
                service.resume()
                assert client.health()["ready"] is True

    def test_draining_server_rejects_submission_with_503(self):
        service = RuntimeService(executor="thread")
        with BackgroundServer(service) as server:
            with ServiceClient(server.url) as client:
                asyncio.run_coroutine_threadsafe(
                    service.drain(timeout=30), server._loop
                ).result(timeout=60)
                with pytest.raises(ServiceOverloaded) as info:
                    client.submit(named_circuit(), backend="statevector",
                                  shots=8, seed=1)
                # The typed body survived the hop: reason + retry_after
                # rebuilt, not just a bare 503.
                assert info.value.reason == "draining"
                assert info.value.retry_after == 5.0


class TestConnectionChaos:
    def test_dropped_accept_is_survived_by_reconnect(self):
        service = RuntimeService(executor="thread")
        with BackgroundServer(service) as server:
            with ServiceClient(server.url) as client:
                assert client.health()["ready"] is True  # warm keep-alive
                # Drop the *next* accepted connection on the floor.  The
                # client's stale-keep-alive guard reconnects exactly once,
                # which is all this needs.
                with faults.injected({"seed": 1, "sites": {
                    "http.accept": {"rate": 1.0, "times": 1},
                }}) as plan:
                    client.close()  # force the next call onto a fresh accept
                    job_id = client.submit(named_circuit(),
                                           backend="statevector", shots=16,
                                           seed=3)
                    assert plan.stats()["http.accept"]["fired"] == 1
                counts = client.counts(job_id, timeout=60)
                assert counts and sum(counts[0].values()) == 16


class TestClientRetryPolicy:
    def make_client(self, **kwargs):
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("backoff_s", 0.001)
        kwargs.setdefault("max_backoff_s", 0.05)
        return ServiceClient("http://127.0.0.1:1", **kwargs)

    def test_retries_transient_rejections_honouring_retry_after(self,
                                                                monkeypatch):
        client = self.make_client()
        failures = [
            ServiceOverloaded("full", retry_after=0.012),
            CircuitOpen("open", backend="sick", retry_after=0.034),
        ]
        calls = {"n": 0}

        def flaky(method, path, payload=None, query=None, raw=False,
                  any_status=False):
            calls["n"] += 1
            if failures:
                raise failures.pop(0)
            return {"ok": True}

        sleeps = []
        monkeypatch.setattr(client, "_request_once", flaky)
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        assert client._request("GET", "/v1/anything") == {"ok": True}
        assert calls["n"] == 3
        # Each sleep honoured the server's hint (plus jitter, under cap).
        assert sleeps[0] >= 0.012
        assert sleeps[1] >= 0.034
        assert all(s <= client.max_backoff_s for s in sleeps)

    def test_budget_exhaustion_raises_last_error(self, monkeypatch):
        client = self.make_client(retries=2)

        def always_full(*args, **kwargs):
            raise ServiceOverloaded("full", retry_after=0.001)

        monkeypatch.setattr(client, "_request_once", always_full)
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        with pytest.raises(ServiceOverloaded):
            client._request("GET", "/v1/anything")

    def test_quota_exceeded_is_not_retried(self, monkeypatch):
        client = self.make_client()
        calls = {"n": 0}

        def over_quota(*args, **kwargs):
            calls["n"] += 1
            raise QuotaExceeded("over", client="alice", in_flight=4, limit=4)

        monkeypatch.setattr(client, "_request_once", over_quota)
        with pytest.raises(QuotaExceeded):
            client._request("GET", "/v1/anything")
        assert calls["n"] == 1

    def test_retries_ride_out_a_drain_over_the_wire(self):
        """End to end: a draining server 503s; a retrying client parks on
        Retry-After-scaled backoff and succeeds once the service resumes."""
        service = RuntimeService(executor="thread")
        with BackgroundServer(service) as server:
            asyncio.run_coroutine_threadsafe(
                service.drain(timeout=30), server._loop
            ).result(timeout=60)
            resumer = threading.Timer(0.3, service.resume)
            resumer.start()
            try:
                with ServiceClient(server.url, retries=8, backoff_s=0.05,
                                   max_backoff_s=0.2) as client:
                    job_id = client.submit(named_circuit(),
                                           backend="statevector", shots=16,
                                           seed=5)
                    assert sum(client.counts(job_id,
                                             timeout=60)[0].values()) == 16
            finally:
                resumer.cancel()


class TestBreakerOverTheWire:
    def test_circuit_open_rebuilt_by_client(self):
        register_backend("sick", lambda: SickBackend(), overwrite=True)
        try:
            service = RuntimeService(
                executor="thread",
                breaker=dict(failure_threshold=1.0, min_samples=2, window=4,
                             cooldown_s=60.0),
            )
            with BackgroundServer(service) as server:
                with ServiceClient(server.url) as client:
                    for _ in range(2):
                        job_id = client.submit(named_circuit(),
                                               backend="sick", shots=1)
                        # Collection surfaces the failure; the breaker
                        # records it when the scheduler reaps the batch.
                        with pytest.raises(Exception):
                            client.result(job_id, timeout=60)
                    deadline = 50
                    while True:
                        try:
                            job_id = client.submit(named_circuit(),
                                                   backend="sick", shots=1)
                            with pytest.raises(Exception):
                                client.result(job_id, timeout=60)
                        except CircuitOpen as error:
                            assert error.backend == "sick"
                            assert error.retry_after > 0
                            break
                        deadline -= 1
                        assert deadline > 0, "breaker never opened"
                    health = client.health()
                    assert "sick" in health["open_breakers"]
                    assert health["status"] == "degraded"
        finally:
            from repro.runtime.provider import _BACKEND_FACTORIES

            _BACKEND_FACTORIES.pop("sick", None)
