"""Unit tests for per-tenant cost ledgers and fair-share feedback."""

import asyncio

from repro.circuits import library
from repro.service import CostLedger, RuntimeService


def run(coro):
    return asyncio.run(coro)


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


class TestCostLedger:
    def test_charge_accumulates_and_persists(self, tmp_path):
        ledger = CostLedger(cache_dir=str(tmp_path))
        assert ledger.durable
        ledger.charge("alice", 1024, 0.5)
        ledger.charge("alice", 1024, None)  # unpriced shots still count
        spend = ledger.spend("alice")
        assert spend["shots"] == 2048
        assert spend["cost_s"] == 0.5
        assert spend["jobs"] == 2
        reloaded = CostLedger(cache_dir=str(tmp_path))
        assert reloaded.spend("alice")["shots"] == 2048
        assert reloaded.spend("bob") is None

    def test_single_tenant_keeps_configured_weight(self):
        ledger = CostLedger()
        ledger.charge("alice", 10_000, 10.0)
        assert ledger.effective_weight("alice", 4) == 4

    def test_heavy_spender_weighted_down_light_up(self):
        ledger = CostLedger()
        ledger.charge("heavy", 100_000, 100.0)
        ledger.charge("light", 1_000, 1.0)
        base = 4
        heavy = ledger.effective_weight("heavy", base)
        light = ledger.effective_weight("light", base)
        assert heavy < base <= light
        # Clamped: never to zero, never beyond 4x the base.
        assert 1 <= heavy and light <= base * 4

    def test_scale_free_ratio(self):
        before, after = CostLedger(), CostLedger()
        for name, shots in (("a", 100), ("b", 300)):
            before.charge(name, shots)
            after.charge(name, shots * 1000)  # everyone 1000x busier
        assert before.effective_weight("a", 2) == after.effective_weight("a", 2)
        assert before.effective_weight("b", 2) == after.effective_weight("b", 2)

    def test_shots_metric_until_costs_measured(self):
        ledger = CostLedger()
        ledger.charge("a", 100)
        ledger.charge("b", 400)
        weight_by_shots = ledger.effective_weight("b", 4)
        assert weight_by_shots < 4
        # Once any tenant has measured cost, seconds become the metric:
        # only 'a' has cost_s, so 'b' counts as having no spend at all.
        ledger.charge("a", 0, 2.0)
        assert ledger.effective_weight("b", 4) == 4  # one measured tenant


class TestServiceAccounting:
    def test_settled_jobs_charge_the_ledger(self, tmp_path):
        async def live():
            service = RuntimeService(cache_dir=str(tmp_path))
            token = service.register_client("alice", weight=2)
            job = await service.submit(
                measured_bell(), "statevector", shots=300, seed=1, token=token
            )
            await job.wait()
            await service.drain()
            # Settlement journaling runs off-loop; poll for the charge.
            stats = service.stats()
            for _ in range(200):
                if stats["accounting"].get("alice"):
                    break
                await asyncio.sleep(0.02)
                stats = service.stats()
            await service.close()
            return stats

        stats = run(live())
        assert stats["accounting"]["alice"]["shots"] == 300
        assert stats["accounting"]["alice"]["jobs"] == 1
        # And it persisted alongside the journal.
        assert CostLedger(cache_dir=str(tmp_path)).spend("alice")["shots"] == 300

    def test_cost_weighted_shares_rebalance_scheduler(self, tmp_path):
        async def live():
            service = RuntimeService(
                cache_dir=str(tmp_path), cost_weighted_shares=True
            )
            heavy = service.register_client("heavy", weight=2)
            light = service.register_client("light", weight=2)
            for _ in range(3):
                job = await service.submit(
                    measured_bell(), "statevector", shots=4096, seed=1,
                    token=heavy,
                )
                await job.wait()
            job = await service.submit(
                measured_bell(), "statevector", shots=16, seed=1, token=light
            )
            await job.wait()
            await service.drain()
            service.resume()  # drain() closes admissions; re-open them
            # One more settlement after both ledgers have spend, so the
            # feedback sees two tenants.
            job = await service.submit(
                measured_bell(), "statevector", shots=4096, seed=2,
                token=heavy,
            )
            await job.wait()
            await service.drain()
            # The charge lands off-loop in the default executor; poll
            # rather than guessing a sleep.
            weights = {}
            for _ in range(200):
                weights = service.stats()["scheduler_weights"]
                if weights.get("heavy", 2) < 2:
                    break
                await asyncio.sleep(0.02)
            await service.close()
            return weights

        weights = run(live())
        assert weights["heavy"] < 2  # nudged down from its base weight
