"""End-to-end tests for :class:`repro.service.client.ServiceClient`:
counts over the wire bit-identical to in-process ``execute()`` under both
executors, the OpenQASM round trip for every library circuit, typed-error
reconstruction on the client side, and pre-restart ``svc-N`` ids served
over HTTP after a recover — including from a genuinely separate server
process driven through ``python -m repro.experiments --serve``."""

import os
import re
import subprocess
import sys

import pytest

from repro.circuits import library
from repro.circuits.qasm import circuit_to_qasm
from repro.exceptions import QueueTimeout, UnknownJob
from repro.runtime import execute
from repro.service import (
    AuthenticationError,
    BackgroundServer,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    RuntimeService,
    ScopeDenied,
    ServiceClient,
)

EXECUTORS = ("thread", "process")


def measured(circuit):
    circuit.measure_all()
    return circuit


#: Every public circuit builder in :mod:`repro.circuits.library`, with
#: concrete arguments — the wire must round-trip each of them through
#: OpenQASM bit-identically.
LIBRARY_CIRCUITS = {
    "bell_pair": lambda: measured(library.bell_pair()),
    "ghz_state": lambda: measured(library.ghz_state(3)),
    "w_state": lambda: measured(library.w_state(3)),
    "uniform_superposition": lambda: measured(
        library.uniform_superposition(2)),
    "qft": lambda: measured(library.qft(3)),
    "inverse_qft": lambda: measured(library.inverse_qft(3)),
    "teleportation": lambda: measured(library.teleportation()),
    "grover": lambda: measured(library.grover(3, [5])),
    "deutsch_jozsa": lambda: measured(library.deutsch_jozsa(3)),
    "phase_estimation": lambda: measured(library.phase_estimation(0.25, 3)),
    "random_circuit": lambda: measured(library.random_circuit(3, 4, seed=5)),
}


def single_tenant_server(executor="thread", cache_dir=None):
    service = RuntimeService(executor=executor, allow_anonymous=False,
                             cache_dir=cache_dir,
                             **({} if cache_dir else
                                {"journal": False, "accounting": False}))
    service.register_client("alice", token="tok-alice",
                            scopes=("submit", "read"))
    return BackgroundServer(service)


# ----------------------------------------------------------------------
# The determinism contract over the wire
# ----------------------------------------------------------------------


class TestBitIdenticalCounts:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_client_counts_match_in_process_execute(self, executor):
        circuit = measured(library.bell_pair())
        reference = [
            dict(execute(circuit, "noisy:ibmqx4", shots=256,
                         seed=s).result().counts)
            for s in (1, 2)
        ]
        with single_tenant_server(executor=executor) as server:
            with ServiceClient(server.url, token="tok-alice") as client:
                job_id = client.submit(
                    [circuit, circuit], backend="noisy:ibmqx4",
                    shots=256, seed=[1, 2])
                assert client.counts(job_id, timeout=120) == reference

    @pytest.mark.parametrize("name", sorted(LIBRARY_CIRCUITS))
    def test_library_circuit_round_trips_over_the_wire(self, name, server):
        circuit = LIBRARY_CIRCUITS[name]()
        reference = dict(
            execute(circuit, "statevector", shots=128, seed=23)
            .result().counts
        )
        with ServiceClient(server.url, token="tok-alice") as client:
            job_id = client.submit(circuit, backend="statevector",
                                   shots=128, seed=23)
            assert client.counts(job_id, timeout=120) == [reference]

    def test_qasm_string_submission_equals_circuit_submission(self, server):
        circuit = measured(library.ghz_state(3))
        with ServiceClient(server.url, token="tok-alice") as client:
            from_circuit = client.counts(
                client.submit(circuit, backend="statevector", shots=64,
                              seed=4), timeout=120)
            from_qasm = client.counts(
                client.submit(circuit_to_qasm(circuit),
                              backend="statevector", shots=64, seed=4),
                timeout=120)
        assert from_circuit == from_qasm

    def test_result_carries_shots(self, server):
        circuit = measured(library.bell_pair())
        with ServiceClient(server.url, token="tok-alice") as client:
            job_id = client.submit(circuit, backend="statevector", shots=96,
                                   seed=8)
            (result,) = client.result(job_id, timeout=120)
        assert result["shots"] == 96
        assert sum(result["counts"].values()) == 96


@pytest.fixture(scope="module")
def server():
    with single_tenant_server() as background:
        yield background


# ----------------------------------------------------------------------
# Typed errors rebuilt client-side
# ----------------------------------------------------------------------


class TestErrorReconstruction:
    def test_bad_token_raises_authentication_error(self, server):
        with ServiceClient(server.url, token="wrong") as client:
            with pytest.raises(AuthenticationError):
                client.submit(measured(library.bell_pair()),
                              backend="statevector")

    def test_unknown_job_raises_unknown_job_with_id(self, server):
        with ServiceClient(server.url, token="tok-alice") as client:
            with pytest.raises(UnknownJob) as excinfo:
                client.status("svc-31337")
        assert excinfo.value.job_id == "svc-31337"

    def test_rate_limited_rebuilds_retry_after(self):
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client(
            "alice", token="tok-alice",
            quota=ClientQuota(shots_per_second=1.0, over_quota="reject"))
        circuit = measured(library.bell_pair())
        with BackgroundServer(service) as background:
            with ServiceClient(background.url, token="tok-alice") as client:
                client.submit(circuit, backend="statevector", shots=1)
                with pytest.raises(RateLimited) as excinfo:
                    client.submit(circuit, backend="statevector", shots=1000)
        assert excinfo.value.client == "alice"
        assert excinfo.value.retry_after > 0

    def test_quota_exceeded_rebuilds_limits(self):
        import asyncio
        import threading

        from repro.devices.backend import Backend
        from repro.results.counts import Counts
        from repro.results.result import Result

        gate = threading.Event()

        class GatedBackend(Backend):
            name = "gated"

            def run(self, circuit, shots=1024, seed=None):
                assert gate.wait(30)
                return Result(counts=Counts({"0": shots}), shots=shots)

        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client(
            "alice", token="tok-alice",
            quota=ClientQuota(max_in_flight_jobs=1, over_quota="reject"))
        circuit = measured(library.bell_pair())
        try:
            with BackgroundServer(service) as background:
                async def fill():
                    return await service.submit(circuit, GatedBackend(),
                                                shots=16, token="tok-alice")

                asyncio.run_coroutine_threadsafe(
                    fill(), background._loop).result(timeout=30)
                with ServiceClient(background.url,
                                   token="tok-alice") as client:
                    with pytest.raises(QuotaExceeded) as excinfo:
                        client.submit(circuit, backend="statevector",
                                      shots=16)
        finally:
            gate.set()
        assert excinfo.value.in_flight == 1
        assert excinfo.value.limit == 1

    def test_cross_tenant_read_raises_scope_denied(self):
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client("alice", token="tok-alice")
        service.register_client("bob", token="tok-bob")
        circuit = measured(library.bell_pair())
        with BackgroundServer(service) as background:
            with ServiceClient(background.url, token="tok-alice") as alice:
                job_id = alice.submit(circuit, backend="statevector",
                                      shots=16)
            with ServiceClient(background.url, token="tok-bob") as bob:
                with pytest.raises(ScopeDenied) as excinfo:
                    bob.status(job_id)
        assert excinfo.value.client == "bob"

    def test_validation_errors_raise_value_error(self, server):
        with ServiceClient(server.url, token="tok-alice") as client:
            with pytest.raises(ValueError, match="backend"):
                client.submit(measured(library.bell_pair()), backend="")

    def test_queue_timeout_on_slow_collection(self):
        import asyncio
        import threading

        from repro.devices.backend import Backend
        from repro.results.counts import Counts
        from repro.results.result import Result

        gate = threading.Event()

        class GatedBackend(Backend):
            name = "gated"

            def run(self, circuit, shots=1024, seed=None):
                assert gate.wait(30)
                return Result(counts=Counts({"0": shots}), shots=shots)

        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client("alice", token="tok-alice")
        circuit = measured(library.bell_pair())
        try:
            with BackgroundServer(service) as background:
                async def fill():
                    return await service.submit(circuit, GatedBackend(),
                                                shots=16, token="tok-alice")

                handle = asyncio.run_coroutine_threadsafe(
                    fill(), background._loop).result(timeout=30)
                with ServiceClient(background.url,
                                   token="tok-alice") as client:
                    # 504 while the job is alive-but-slow rebuilds as the
                    # queue-timeout type, not a generic JobError.
                    with pytest.raises(QueueTimeout):
                        client.counts(handle.job_id, timeout=0.05)
        finally:
            gate.set()


# ----------------------------------------------------------------------
# Restart durability over the wire
# ----------------------------------------------------------------------


class TestRestartOverTheWire:
    def test_pre_restart_ids_resolve_after_recover(self, tmp_path):
        circuit = measured(library.bell_pair())
        cache_dir = str(tmp_path)

        # Life 1: submit, collect, shut the whole server down.
        with single_tenant_server(cache_dir=cache_dir) as server:
            with ServiceClient(server.url, token="tok-alice") as client:
                job_id = client.submit(circuit, backend="statevector",
                                       shots=128, seed=13)
                first_counts = client.counts(job_id, timeout=120)

        # Life 2: a fresh service over the same journal; serve() recovers
        # before the port opens, so the old id answers immediately.
        with single_tenant_server(cache_dir=cache_dir) as server:
            with ServiceClient(server.url, token="tok-alice") as client:
                assert client.status(job_id) == "done"
                assert client.counts(job_id, timeout=120) == first_counts

    def test_second_process_submits_and_reads_over_http(self, tmp_path):
        """The acceptance path: a *separate* server process started via
        ``--serve``, a scoped token, a bell_pair batch, streamed events,
        and counts bit-identical to in-process ``execute()``."""
        circuit = measured(library.bell_pair())
        reference = dict(
            execute(circuit, "statevector", shots=256, seed=42)
            .result().counts
        )
        env = dict(os.environ, PYTHONPATH="src",
                   REPRO_CACHE_DIR=str(tmp_path))
        env.pop("REPRO_EXECUTOR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments",
             "--serve", "127.0.0.1:0",
             "--serve-client", "alice:tok-alice:submit+read"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd="/root/repo")
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no URL in banner {banner!r}"
            port = int(match.group(1))
            with ServiceClient(f"127.0.0.1:{port}",
                               token="tok-alice") as client:
                job_id = client.submit(circuit, backend="statevector",
                                       shots=256, seed=42)
                events = list(client.events(job_id, timeout=120))
                assert [kind for kind, _ in events] == ["job", "settled"]
                assert client.counts(job_id, timeout=120) == [reference]
            # Registering tenants must turn anonymous access off: the
            # all-scope anonymous identity would otherwise read any
            # tenant's job over the open socket.
            with ServiceClient(f"127.0.0.1:{port}") as anon:
                with pytest.raises(AuthenticationError):
                    anon.status(job_id)
        finally:
            proc.terminate()
            proc.wait(timeout=30)
