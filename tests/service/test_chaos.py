"""Chaos storm: the PR-6 many-client storm replayed under fault injection.

Every handle must still settle exactly once, surviving jobs' counts must
stay bit-identical to a fault-free run (retries resubmit with the chunk's
original seed), and the service's per-tenant accounting must not leak
in-flight slots whatever mix of retries and failures the plan produces.
"""

import asyncio

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.faults import FaultPlan
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import execute, pool_stats
from repro.service import ClientQuota, RuntimeService

#: Fast backoffs: chaos tests sleep through plenty of retries.
RETRY = {"max_retries": 3, "backoff_s": 0.001, "max_backoff_s": 0.01}

TERMINAL = {"done", "failed", "dropped", "cancelled"}


class CountingBackend(Backend):
    """A cheap deterministic backend: counts derive from the seed."""

    name = "counting"

    def run(self, circuit, shots=1024, seed=None):
        key = format((seed or 0) % 4, "02b")
        return Result(counts=Counts({key: shots}), shots=shots)


def named_circuit(name):
    circuit = QuantumCircuit(2, name=name)
    circuit.measure_all()
    return circuit


class TestChaosStorm:
    def test_storm_under_chunk_faults_settles_bit_identically(self):
        clients, per_client, shots = 6, 8, 32
        backend = CountingBackend()
        reference = {
            seed: dict(execute(named_circuit("ref"), backend, shots=shots,
                               seed=seed).result().counts)
            for seed in range(per_client)
        }
        # ~29% of chunk attempts fault; with 3 retries per chunk the odds
        # of any job exhausting them are ~0.7% — the assertions below
        # tolerate (and report) genuine failures without depending on any.
        plan = FaultPlan(seed=13, sites={"chunk.simulate": 0.29})

        async def client_load(service, token, name):
            handles = []
            for i in range(per_client):
                handle = await service.submit(
                    named_circuit(f"{name}-{i}"), backend, shots=shots,
                    seed=i, token=token, retry=dict(RETRY), fault_plan=plan,
                )
                handles.append((i, handle))
            seen = set()
            async for handle in service.as_completed(
                [h for _i, h in handles], timeout=120
            ):
                assert handle.job_id not in seen
                seen.add(handle.job_id)
            assert len(seen) == per_client
            return handles

        async def main():
            service = RuntimeService(executor="thread")
            try:
                tokens = {
                    f"tenant{c}": service.register_client(
                        f"tenant{c}",
                        quota=ClientQuota(max_in_flight_jobs=4,
                                          over_quota="queue"),
                    )
                    for c in range(clients)
                }
                loads = await asyncio.gather(*(
                    client_load(service, token, name)
                    for name, token in tokens.items()
                ))
                survived = failed = 0
                for handles in loads:
                    for seed, handle in handles:
                        status = handle.status()
                        assert status in TERMINAL
                        if status == "done":
                            survived += 1
                            counts = await handle.counts()
                            assert counts == [reference[seed]]
                        else:
                            failed += 1
                assert survived + failed == clients * per_client
                # Chaos actually happened, and retries actually saved
                # work: with a ~29% fault rate, an unretried storm would
                # lose ~29% of its jobs — nearly all must survive here.
                assert plan.stats()["chunk.simulate"]["fired"] > 0
                assert survived >= clients * per_client * 0.9
                stats = service.stats()
                # No quota/ledger leaks: every in-flight slot was returned
                # whether the job survived, retried or failed.
                settled = 0
                for name in tokens:
                    tenant = stats["clients"][name]
                    assert tenant["in_flight_jobs"] == 0
                    settled += (tenant["completed_batches"]
                                + tenant["failed_batches"])
                assert stats["in_flight_jobs"] == 0
                assert settled == clients * per_client
                assert stats["completed_jobs"] == survived
            finally:
                await service.close()

        asyncio.run(main())

    def test_storm_survives_worker_crash_with_zero_failed_jobs(self):
        """Acceptance: a process-pool worker killed mid-storm is healed by
        the pool rebuild — zero failed jobs, counts bit-identical."""
        tenants, per_tenant, shots = 3, 4, 120
        circuit = named_circuit("crash-storm")
        reference = {
            seed: dict(execute(circuit, "statevector", shots=shots,
                               seed=seed, chunk_shots=40,
                               executor="process").result().counts)
            for seed in range(per_tenant)
        }
        rebuilds_before = pool_stats()["rebuilds"]
        plan = FaultPlan(seed=2, sites={
            "pool.worker_crash": {"rate": 1.0, "times": 1},
        })

        async def main():
            service = RuntimeService(executor="process")
            try:
                tokens = [service.register_client(f"t{i}")
                          for i in range(tenants)]
                handles = []
                for token in tokens:
                    for seed in range(per_tenant):
                        handles.append((seed, await service.submit(
                            circuit, "statevector", shots=shots, seed=seed,
                            token=token, chunk_shots=40,
                            retry=dict(RETRY), fault_plan=plan,
                        )))
                async for _h in service.as_completed(
                    [h for _s, h in handles], timeout=180
                ):
                    pass
                for seed, handle in handles:
                    assert handle.status() == "done"
                    assert await handle.counts() == [reference[seed]]
                stats = service.stats()
                for i in range(tenants):
                    assert stats["clients"][f"t{i}"]["failed_batches"] == 0
                assert stats["completed_jobs"] == tenants * per_tenant
            finally:
                await service.close()

        asyncio.run(main())
        assert plan.stats()["pool.worker_crash"]["fired"] == 1
        assert pool_stats()["rebuilds"] > rebuilds_before
