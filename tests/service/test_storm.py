"""Many-client storm: sustained concurrent submissions through the
service with quotas and rate limits enforced, every handle settling
exactly once, and counts staying bit-identical to the synchronous path.
"""

import asyncio

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import ServiceError
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import execute
from repro.service import ClientQuota, QuotaExceeded, RateLimited, RuntimeService


class CountingBackend(Backend):
    """A cheap deterministic backend: counts derive from the seed."""

    name = "counting"

    def run(self, circuit, shots=1024, seed=None):
        key = format((seed or 0) % 4, "02b")
        return Result(counts=Counts({key: shots}), shots=shots)


def named_circuit(name):
    circuit = QuantumCircuit(2, name=name)
    circuit.measure_all()
    return circuit


class TestManyClientStorm:
    def test_storm_enforces_quotas_and_settles_every_handle(self):
        clients, per_client = 8, 12

        async def client_load(service, token, name):
            """One tenant's burst: fire-and-stream with an in-flight cap."""
            handles, rejected = [], 0
            for i in range(per_client):
                try:
                    handles.append(await service.submit(
                        named_circuit(f"{name}-{i}"), CountingBackend(),
                        shots=32, seed=i, token=token,
                    ))
                except (QuotaExceeded, RateLimited):
                    rejected += 1
                    await asyncio.sleep(0.01)
            seen = set()
            async for handle in service.as_completed(handles, timeout=60):
                assert handle.job_id not in seen
                seen.add(handle.job_id)
            assert len(seen) == len(handles)
            return len(handles), rejected

        async def main():
            service = RuntimeService(executor="thread")
            try:
                tokens = {
                    f"tenant{c}": service.register_client(
                        f"tenant{c}",
                        weight=1 + c % 3,
                        quota=ClientQuota(max_in_flight_jobs=4,
                                          over_quota="queue"),
                    )
                    for c in range(clients)
                }
                totals = await asyncio.gather(*(
                    client_load(service, token, name)
                    for name, token in tokens.items()
                ))
                accepted = sum(n for n, _r in totals)
                assert accepted == clients * per_client  # queue policy: no loss
                stats = service.stats()
                assert stats["completed_jobs"] == accepted
                assert stats["jobs_per_second"] > 0
                latency = stats["queue_latency"]
                assert latency["window_count"] == accepted
                assert latency["total_count"] == accepted
                assert latency["p99_s"] is not None
                for name in tokens:
                    tenant = stats["clients"][name]
                    assert tenant["completed_batches"] == per_client
                    assert tenant["in_flight_jobs"] == 0
                    # The in-flight cap was enforced, not just configured:
                    # 12 one-job submissions against a cap of 4 must wait.
                    assert tenant["rejected_quota"] == 0
            finally:
                await service.close()

        asyncio.run(main())

    def test_storm_rejecting_quota_bounds_in_flight(self):
        """With over_quota='reject', a tenant can never hold more than its
        cap in flight — checked by watching the service's own accounting
        at every submission."""

        async def main():
            service = RuntimeService(executor="thread")
            try:
                token = service.register_client(
                    "greedy", quota=ClientQuota(max_in_flight_jobs=3)
                )
                handles, rejections, max_seen = [], 0, 0
                for i in range(30):
                    try:
                        handles.append(await service.submit(
                            named_circuit(f"g{i}"), CountingBackend(),
                            shots=16, seed=i, token=token,
                        ))
                    except QuotaExceeded as error:
                        rejections += 1
                        assert error.in_flight <= 3
                        await asyncio.sleep(0.005)
                    in_flight = service.stats()["clients"]["greedy"][
                        "in_flight_jobs"
                    ]
                    max_seen = max(max_seen, in_flight)
                    assert in_flight <= 3
                async for _h in service.as_completed(handles, timeout=60):
                    pass
                assert max_seen == 3  # the cap was actually reached
                assert rejections >= 1  # ... and enforced
            finally:
                await service.close()

        asyncio.run(main())

    def test_storm_counts_match_synchronous_execute(self):
        """Satellite: seed determinism through the async path under
        concurrency — every tenant's counts equal plain execute()."""
        backend = CountingBackend()
        circuits = [named_circuit(f"d{i}") for i in range(3)]
        reference = {
            seed: [r.counts
                   for r in execute(circuits, backend, shots=64,
                                    seed=seed).result()]
            for seed in range(6)
        }

        async def main():
            service = RuntimeService(executor="thread")
            try:
                handles = {
                    seed: await service.submit(circuits, backend, shots=64,
                                               seed=seed)
                    for seed in range(6)
                }
                observed = {
                    seed: await handle.counts()
                    for seed, handle in handles.items()
                }
                assert observed == reference
            finally:
                await service.close()

        asyncio.run(main())
