"""Unit tests for the service admission primitives: the token
authenticator stub, client quota validation, and the token bucket (driven
by a hand-cranked clock so nothing sleeps)."""

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    AuthenticationError,
    ClientQuota,
    TokenAuthenticator,
    TokenBucket,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# TokenAuthenticator
# ----------------------------------------------------------------------


class TestTokenAuthenticator:
    def test_register_returns_token_that_authenticates(self):
        auth = TokenAuthenticator()
        token = auth.register("alice", weight=3, team="qc")
        identity = auth.authenticate(token)
        assert identity.name == "alice"
        assert identity.weight == 3
        assert identity.metadata == {"team": "qc"}

    def test_explicit_token_is_honoured(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="s3cret")
        assert auth.authenticate("s3cret").name == "alice"

    def test_unknown_token_rejected(self):
        auth = TokenAuthenticator()
        auth.register("alice")
        with pytest.raises(AuthenticationError):
            auth.authenticate("not-a-token")

    def test_missing_token_rejected_unless_anonymous_allowed(self):
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().authenticate(None)
        identity = TokenAuthenticator(allow_anonymous=True).authenticate(None)
        assert identity.name == TokenAuthenticator.ANONYMOUS

    def test_token_cannot_be_shared_across_names(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="dup")
        with pytest.raises(ServiceError):
            auth.register("bob", token="dup")

    def test_revoke_forgets_token(self):
        auth = TokenAuthenticator()
        token = auth.register("alice")
        assert auth.revoke(token)
        assert not auth.revoke(token)
        with pytest.raises(AuthenticationError):
            auth.authenticate(token)

    def test_invalid_registrations_rejected(self):
        auth = TokenAuthenticator()
        with pytest.raises(ServiceError):
            auth.register("")
        with pytest.raises(ServiceError):
            auth.register("alice", weight=0)

    def test_clients_lists_names_not_tokens(self):
        auth = TokenAuthenticator()
        auth.register("bob")
        auth.register("alice")
        assert auth.clients() == ["alice", "bob"]


# ----------------------------------------------------------------------
# ClientQuota validation
# ----------------------------------------------------------------------


class TestClientQuota:
    def test_defaults_are_unlimited(self):
        quota = ClientQuota()
        assert quota.max_in_flight_jobs is None
        assert quota.shots_per_second is None
        assert quota.over_quota == "reject"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"over_quota": "explode"},
            {"max_in_flight_jobs": 0},
            {"max_in_flight_jobs": -2},
            {"shots_per_second": 0},
            {"shots_per_second": -1.5},
            {"burst_shots": 0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ClientQuota(**kwargs)


# ----------------------------------------------------------------------
# TokenBucket (fake clock: fully deterministic)
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_grants_up_to_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        assert bucket.acquire(100) == 0.0
        assert bucket.tokens == 0.0

    def test_empty_bucket_returns_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(100)
        retry = bucket.acquire(50)
        assert retry == pytest.approx(5.0)  # 50 tokens at 10/s

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(100)
        clock.advance(5.0)
        assert bucket.acquire(50) == 0.0

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        clock.advance(1e6)
        assert bucket.tokens == 100.0

    def test_oversized_request_passes_from_full_bucket_with_debt(self):
        """A request above the burst is granted when the bucket is full
        (debt model) so one large legitimate batch is never starved."""
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        assert bucket.acquire(250) == 0.0
        assert bucket.tokens == -150.0
        # ... and the debt suppresses the next submission until repaid.
        retry = bucket.acquire(10)
        assert retry == pytest.approx((10 + 150) / 10.0)
        clock.advance(16.0)
        assert bucket.acquire(10) == 0.0

    def test_credit_refunds_capped_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(60)
        bucket.credit(30)
        assert bucket.tokens == 70.0
        bucket.credit(1000)  # refund never overfills the bucket
        assert bucket.tokens == 100.0
        bucket.credit(-5)  # and a non-positive refund is a no-op
        assert bucket.tokens == 100.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0)
        with pytest.raises(ServiceError):
            TokenBucket(rate=10, capacity=0)

    def test_nonpositive_amount_is_free(self):
        bucket = TokenBucket(rate=1, capacity=1, clock=FakeClock())
        assert bucket.acquire(0) == 0.0
        assert bucket.tokens == 1.0
