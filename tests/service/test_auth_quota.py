"""Unit tests for the service admission primitives: the hashed-token
authenticator (digests at rest, expiry, scopes, registration conflicts,
persistence), client quota validation, and the token bucket (driven by a
hand-cranked clock so nothing sleeps)."""

import pytest

from repro.exceptions import RegistrationConflict, ScopeDenied, ServiceError
from repro.runtime.store import CacheStore
from repro.service import (
    AuthenticationError,
    ClientQuota,
    TokenAuthenticator,
    TokenBucket,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# TokenAuthenticator
# ----------------------------------------------------------------------


class TestTokenAuthenticator:
    def test_register_returns_token_that_authenticates(self):
        auth = TokenAuthenticator()
        token = auth.register("alice", weight=3, team="qc")
        identity = auth.authenticate(token)
        assert identity.name == "alice"
        assert identity.weight == 3
        assert identity.metadata == {"team": "qc"}

    def test_explicit_token_is_honoured(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="s3cret")
        assert auth.authenticate("s3cret").name == "alice"

    def test_unknown_token_rejected(self):
        auth = TokenAuthenticator()
        auth.register("alice")
        with pytest.raises(AuthenticationError):
            auth.authenticate("not-a-token")

    def test_missing_token_rejected_unless_anonymous_allowed(self):
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().authenticate(None)
        identity = TokenAuthenticator(allow_anonymous=True).authenticate(None)
        assert identity.name == TokenAuthenticator.ANONYMOUS

    def test_token_cannot_be_shared_across_names(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="dup")
        with pytest.raises(ServiceError):
            auth.register("bob", token="dup")

    def test_revoke_forgets_token(self):
        auth = TokenAuthenticator()
        token = auth.register("alice")
        assert auth.revoke(token)
        assert not auth.revoke(token)
        with pytest.raises(AuthenticationError):
            auth.authenticate(token)

    def test_invalid_registrations_rejected(self):
        auth = TokenAuthenticator()
        with pytest.raises(ServiceError):
            auth.register("")
        with pytest.raises(ServiceError):
            auth.register("alice", weight=0)

    def test_clients_lists_names_not_tokens(self):
        auth = TokenAuthenticator()
        auth.register("bob")
        auth.register("alice")
        assert auth.clients() == ["alice", "bob"]

    def test_tokens_are_hashed_at_rest(self):
        auth = TokenAuthenticator()
        token = auth.register("alice", token="s3cret")
        # No internal structure may hold the plaintext secret.
        for table in (auth._tokens, auth._policies):
            assert token not in table
            assert all(token not in str(v) for v in table.values())

    def test_conflicting_new_token_for_same_name_rejected(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="one", weight=2)
        with pytest.raises(RegistrationConflict) as excinfo:
            auth.register("alice", token="two", weight=5)
        assert excinfo.value.client == "alice"
        assert excinfo.value.field == "weight"
        with pytest.raises(RegistrationConflict) as excinfo:
            auth.register("alice", token="two", weight=2,
                          quota=ClientQuota(max_in_flight_jobs=1))
        assert excinfo.value.field == "quota"
        # A matching policy issues the additional token fine.
        auth.register("alice", token="two", weight=2)
        assert auth.authenticate("two").name == "alice"

    def test_same_token_reregister_is_explicit_update(self):
        auth = TokenAuthenticator()
        auth.register("alice", token="one", weight=2)
        auth.register("alice", token="one", weight=7)
        assert auth.authenticate("one").weight == 7

    def test_token_expiry(self):
        clock = FakeClock()
        auth = TokenAuthenticator(clock=clock)
        token = auth.register("alice", expires_in=60.0)
        assert auth.authenticate(token).name == "alice"
        clock.advance(61.0)
        with pytest.raises(AuthenticationError, match="expired"):
            auth.authenticate(token)
        # Expired tokens are dropped; a fresh registration resumes.
        assert auth.clients() == []
        with pytest.raises(ServiceError):
            auth.register("alice", expires_in=-1.0)

    def test_scopes_checked_and_admin_implies_all(self):
        auth = TokenAuthenticator()
        reader = auth.register("alice", token="r", scopes=("read",))
        admin = auth.register("alice", token="a", scopes=("admin",))
        assert auth.authenticate(reader, scope="read").name == "alice"
        with pytest.raises(ScopeDenied) as excinfo:
            auth.authenticate(reader, scope="submit")
        assert excinfo.value.scope == "submit"
        assert excinfo.value.granted == ("read",)
        for scope in ("submit", "read", "admin"):
            assert auth.authenticate(admin, scope=scope).name == "alice"
        with pytest.raises(ServiceError):
            auth.register("bob", scopes=("launch-missiles",))
        with pytest.raises(ServiceError):
            auth.register("bob", scopes=())

    def test_registrations_persist_without_plaintext(self, tmp_path):
        store = CacheStore(cache_dir=str(tmp_path), namespace="service/auth",
                           disk_maxsize=None)
        auth = TokenAuthenticator(store=store)
        token = auth.register("alice", token="s3cret", weight=3,
                              scopes=("submit", "read"))
        # Nothing under the cache dir may contain the plaintext token.
        for path in tmp_path.rglob("*"):
            if path.is_file():
                assert b"s3cret" not in path.read_bytes()
        # A fresh authenticator over the same store resolves the token...
        reloaded = TokenAuthenticator(
            store=CacheStore(cache_dir=str(tmp_path),
                             namespace="service/auth", disk_maxsize=None)
        )
        identity = reloaded.authenticate(token)
        assert identity.name == "alice"
        assert identity.weight == 3
        # ... and enforces the persisted policy on conflicting re-registers.
        with pytest.raises(RegistrationConflict):
            reloaded.register("alice", token="other", weight=9)

    def test_revoke_persists(self, tmp_path):
        def build():
            return TokenAuthenticator(
                store=CacheStore(cache_dir=str(tmp_path),
                                 namespace="service/auth", disk_maxsize=None)
            )

        token = build().register("alice", token="s3cret")
        auth = build()
        assert auth.revoke(token)
        with pytest.raises(AuthenticationError):
            build().authenticate(token)


# ----------------------------------------------------------------------
# ClientQuota validation
# ----------------------------------------------------------------------


class TestClientQuota:
    def test_defaults_are_unlimited(self):
        quota = ClientQuota()
        assert quota.max_in_flight_jobs is None
        assert quota.shots_per_second is None
        assert quota.over_quota == "reject"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"over_quota": "explode"},
            {"max_in_flight_jobs": 0},
            {"max_in_flight_jobs": -2},
            {"shots_per_second": 0},
            {"shots_per_second": -1.5},
            {"burst_shots": 0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ClientQuota(**kwargs)


# ----------------------------------------------------------------------
# TokenBucket (fake clock: fully deterministic)
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_grants_up_to_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        assert bucket.acquire(100) == 0.0
        assert bucket.tokens == 0.0

    def test_empty_bucket_returns_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(100)
        retry = bucket.acquire(50)
        assert retry == pytest.approx(5.0)  # 50 tokens at 10/s

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(100)
        clock.advance(5.0)
        assert bucket.acquire(50) == 0.0

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        clock.advance(1e6)
        assert bucket.tokens == 100.0

    def test_oversized_request_passes_from_full_bucket_with_debt(self):
        """A request above the burst is granted when the bucket is full
        (debt model) so one large legitimate batch is never starved."""
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        assert bucket.acquire(250) == 0.0
        assert bucket.tokens == -150.0
        # ... and the debt suppresses the next submission until repaid.
        retry = bucket.acquire(10)
        assert retry == pytest.approx((10 + 150) / 10.0)
        clock.advance(16.0)
        assert bucket.acquire(10) == 0.0

    def test_credit_refunds_capped_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, capacity=100, clock=clock)
        bucket.acquire(60)
        bucket.credit(30)
        assert bucket.tokens == 70.0
        bucket.credit(1000)  # refund never overfills the bucket
        assert bucket.tokens == 100.0
        bucket.credit(-5)  # and a non-positive refund is a no-op
        assert bucket.tokens == 100.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0)
        with pytest.raises(ServiceError):
            TokenBucket(rate=10, capacity=0)

    def test_nonpositive_amount_is_free(self):
        bucket = TokenBucket(rate=1, capacity=1, clock=FakeClock())
        assert bucket.acquire(0) == 0.0
        assert bucket.tokens == 1.0
