"""End-to-end job tracing and metrics exposition through the service.

Covers the observability layer's service-facing contract: the trace
span tree a submission accumulates across submit → admission → queue →
dispatch → per-chunk simulate → collect → settle, its owner-or-admin
wire exposition at ``/v1/jobs/{id}/trace`` (including recovered
pre-restart ids answered from the journaled tree), the Prometheus
scrape at ``/v1/metrics``, and the settlement-error trace events.
"""

import asyncio
import http.client

import pytest

from repro.circuits import library
from repro.exceptions import ScopeDenied, UnknownJob
from repro.service import (
    BackgroundServer,
    RuntimeService,
    ServiceClient,
)


def measured_ghz(n=3):
    circuit = library.ghz_state(n)
    circuit.measure_all()
    return circuit


def run(coro):
    return asyncio.run(coro)


def walk(node):
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


async def settled_trace(service, token, executor_hint=None, **submit_kw):
    """Submit, collect, settle (including the executor leg), and trace."""
    submit_kw.setdefault("shots", 128)
    submit_kw.setdefault("seed", 7)
    handle = await service.submit(
        [measured_ghz(2), measured_ghz(3)], "statevector",
        token=token, **submit_kw,
    )
    await handle.result()
    await service.drain(30)
    # the journal/ledger settlement leg runs off-loop; let it land
    for _ in range(100):
        trace = handle.trace()
        if trace["duration_s"] is not None:
            break
        await asyncio.sleep(0.01)
    return handle, handle.trace()


class TestServiceTrace:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_span_tree_covers_every_stage(self, executor):
        async def main():
            service = RuntimeService(executor=executor, journal=False,
                                     accounting=False)
            try:
                token = service.register_client("alice")
                _handle, trace = await settled_trace(service, token)
                stages = [c["name"] for c in trace["children"]]
                for stage in ("admission", "queue", "dispatch", "circuit",
                              "settle"):
                    assert stage in stages, (stage, stages)
                assert trace["attrs"]["status"] == "done"
                assert trace["attrs"]["client"] == "alice"
                chunk_names = [
                    n["name"] for n in walk(trace) if n["name"] == "chunk"
                ]
                assert chunk_names, "no chunk spans reached the tree"
                collects = [
                    n for n in walk(trace) if n["name"] == "collect"
                ]
                assert collects
                return trace
            finally:
                await service.close()

        run(main())

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_wall_clocks_consistent_with_job_latency(self, executor):
        """Acceptance: every chunk's worker wall-clock is positive,
        bounded by the submission's end-to-end duration (width 1 pool
        would make them sum below it; any width keeps each chunk's
        parent window inside the root window)."""
        async def main():
            service = RuntimeService(executor=executor, max_workers=1,
                                     journal=False, accounting=False)
            try:
                token = service.register_client("alice")
                _handle, trace = await settled_trace(service, token)
                end_to_end = trace["duration_s"]
                assert end_to_end is not None and end_to_end > 0
                chunks = [n for n in walk(trace) if n["name"] == "chunk"]
                assert chunks
                worker_total = 0.0
                for chunk in chunks:
                    wall = chunk["attrs"]["worker_wall_s"]
                    assert 0.0 <= wall
                    window_end = chunk["start_s"] + chunk["duration_s"]
                    assert window_end <= end_to_end + 1e-6
                    worker_total += wall
                # one worker at a time: simulate time fits the window
                assert worker_total <= end_to_end + 1e-6
            finally:
                await service.close()

        run(main())

    def test_trace_is_owner_or_admin_scoped(self):
        async def main():
            service = RuntimeService(executor="thread", journal=False,
                                     accounting=False, allow_anonymous=False)
            try:
                alice = service.register_client("alice")
                bob = service.register_client("bob")
                admin = service.register_client(
                    "root", scopes=("read", "admin")
                )
                handle, _trace = await settled_trace(service, alice)
                assert service.trace(handle.job_id, alice)["attrs"][
                    "client"] == "alice"
                assert service.trace(handle.job_id, admin) is not None
                with pytest.raises(ScopeDenied):
                    service.trace(handle.job_id, bob)
                with pytest.raises(UnknownJob):
                    service.trace("svc-9999", alice)
            finally:
                await service.close()

        run(main())

    def test_untraced_submission_answers_with_stub(self):
        from repro.obs.trace import set_tracing_enabled

        async def main():
            service = RuntimeService(executor="thread", journal=False,
                                     accounting=False)
            previous = set_tracing_enabled(False)
            try:
                token = service.register_client("alice")
                handle = await service.submit(
                    measured_ghz(2), "statevector", shots=32, seed=1,
                    token=token,
                )
                await handle.result()
                trace = handle.trace()
                assert trace["attrs"]["traced"] is False
                assert trace["children"] == []
            finally:
                set_tracing_enabled(previous)
                await service.close()

        run(main())

    def test_settlement_error_becomes_trace_event(self):
        """The once-per-class warning satellite: every settlement
        bookkeeping failure lands as a structured event on the owning
        job's span, naming the stage and the exception."""

        class BrokenJournal:
            durable = False

            def next_id(self):
                return 1

            def record_submission(self, *a, **k):
                return {}

            def record_settlement(self, *a, **k):
                raise OSError("disk wedged")

            def records(self):
                return []

            def __len__(self):
                return 0

            # len() == 0 must not read as "no journal": the service's
            # ``journal or None`` disable-switch checks truthiness.
            def __bool__(self):
                return True

        async def main():
            service = RuntimeService(executor="thread",
                                     journal=BrokenJournal(),
                                     accounting=False)
            try:
                token = service.register_client("alice")
                handle = await service.submit(
                    measured_ghz(2), "statevector", shots=32, seed=1,
                    token=token,
                )
                await handle.result()
                await service.drain(30)
                for _ in range(200):
                    events = [
                        e for n in walk(handle.trace())
                        for e in n.get("events", ())
                        if e["name"] == "settlement_error"
                    ]
                    if events:
                        break
                    await asyncio.sleep(0.01)
                assert events, "settlement error never reached the trace"
                assert events[0]["stage"] == "journal"
                assert events[0]["error"] == "OSError"
                assert "disk wedged" in events[0]["message"]
                assert service.stats()["settlement_errors"] >= 1
            finally:
                await service.close()

        run(main())

    def test_recovered_id_answers_trace_from_journal(self, tmp_path):
        """A restarted service answers /v1/jobs/{id}/trace for settled
        pre-restart ids with the journaled span tree."""
        cache_dir = str(tmp_path)

        async def first_life():
            service = RuntimeService(executor="thread",
                                     cache_dir=cache_dir)
            try:
                token = service.register_client("alice", token="tok-a")
                handle, trace = await settled_trace(service, token)
                # wait for the journaled settlement to land on disk
                for _ in range(200):
                    record = service.journal.record(handle.journal_id)
                    if record["settled"] and record.get("trace"):
                        break
                    await asyncio.sleep(0.01)
                assert record.get("trace"), "trace never journaled"
                return handle.job_id, trace
            finally:
                await service.close()

        async def second_life(job_id):
            service = RuntimeService(executor="thread",
                                     cache_dir=cache_dir)
            try:
                service.register_client("alice", token="tok-a")
                await service.recover()
                return service.trace(job_id, "tok-a")
            finally:
                await service.close()

        job_id, live_trace = run(first_life())
        recovered = run(second_life(job_id))
        assert recovered["attrs"]["status"] == "done"
        stages = [c["name"] for c in recovered["children"]]
        assert "settle" in stages and "dispatch" in stages
        # the journaled tree is the settled live tree
        assert recovered == live_trace

    def test_unjournaled_recovered_record_degrades_to_stub(self, tmp_path):
        from repro.service.journal import JobJournal

        journal = JobJournal(cache_dir=str(tmp_path))
        journal.record_submission(
            journal.next_id(), "alice", [measured_ghz(2)], "statevector",
            16, 1,
        )
        journal.record_settlement(1, "done", counts=[{"00": 16}],
                                  shots=[16])

        async def main():
            service = RuntimeService(executor="thread", journal=journal,
                                     accounting=False)
            try:
                service.register_client("alice", token="tok-a")
                await service.recover()
                trace = service.trace("svc-1", "tok-a")
                assert trace["attrs"]["traced"] is False
                assert trace["attrs"]["recovered"] is True
                assert trace["duration_s"] is not None
            finally:
                await service.close()

        run(main())


@pytest.fixture(scope="module")
def server():
    service = RuntimeService(executor="thread", journal=False,
                             accounting=False, allow_anonymous=False)
    service.register_client("alice", token="tok-alice",
                            scopes=("submit", "read"))
    service.register_client("bob", token="tok-bob", scopes=("submit", "read"))
    service.register_client("root", token="tok-admin",
                            scopes=("read", "admin"))
    with BackgroundServer(service) as background:
        yield background


class TestWireExposition:
    def submit_and_settle(self, server, token="tok-alice"):
        with ServiceClient(server.url, token=token) as client:
            job_id = client.submit(measured_ghz(2), "statevector",
                                   shots=64, seed=3)
            client.result(job_id, timeout=30)
        return job_id

    def test_trace_endpoint_returns_span_tree(self, server):
        job_id = self.submit_and_settle(server)
        with ServiceClient(server.url, token="tok-alice") as client:
            trace = client.trace(job_id)
        assert trace["name"] == "job"
        assert trace["attrs"]["job_id"] == job_id
        stages = [c["name"] for c in trace["children"]]
        for stage in ("admission", "queue", "dispatch", "circuit"):
            assert stage in stages

    def test_trace_endpoint_scoping(self, server):
        job_id = self.submit_and_settle(server)
        with ServiceClient(server.url, token="tok-bob") as other:
            with pytest.raises(ScopeDenied):
                other.trace(job_id)
        with ServiceClient(server.url, token="tok-admin") as admin:
            assert admin.trace(job_id)["attrs"]["client"] == "alice"
        with ServiceClient(server.url, token="tok-alice") as client:
            with pytest.raises(UnknownJob):
                client.trace("svc-424242")

    def test_metrics_endpoint_prometheus_text(self, server):
        self.submit_and_settle(server)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("GET", "/v1/metrics",
                         headers={"Authorization": "Bearer tok-admin"})
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain"
            )
        finally:
            conn.close()
        assert "# TYPE repro_service_submitted_jobs_total counter" in body
        assert "repro_service_queue_wait_seconds_count" in body
        assert "repro_scheduler_in_flight_jobs" in body
        assert "repro_executor_pools_active" in body

    def test_metrics_requires_admin(self, server):
        with ServiceClient(server.url, token="tok-alice") as client:
            with pytest.raises(ScopeDenied):
                client.metrics()

    def test_client_metrics_round_trip(self, server):
        self.submit_and_settle(server)
        with ServiceClient(server.url, token="tok-admin") as admin:
            text = admin.metrics()
        assert isinstance(text, str)
        assert "repro_service_settled_jobs_total" in text

    def test_live_job_trace_reports_running_spans(self, server):
        """Snapshotting a trace mid-flight answers, with open spans
        showing null durations, rather than erroring or blocking."""
        with ServiceClient(server.url, token="tok-alice") as client:
            job_id = client.submit(
                [measured_ghz(2)] * 4, "statevector", shots=4096, seed=5
            )
            trace = client.trace(job_id)  # no wait: may still be running
            assert trace["attrs"]["job_id"] == job_id
            client.result(job_id, timeout=30)
            settled = client.trace(job_id)
        assert settled["duration_s"] is not None


class TestRegistryServiceCounters:
    def test_submissions_and_settlements_counted(self):
        from repro.obs.metrics import DEFAULT_REGISTRY

        def counters():
            snap = DEFAULT_REGISTRY.snapshot()["counters"]
            return (
                snap.get("repro_service_submitted_jobs_total", 0),
                snap.get(
                    'repro_service_settled_jobs_total{status="done"}', 0
                ),
            )

        async def main():
            before = counters()
            service = RuntimeService(executor="thread", journal=False,
                                     accounting=False)
            try:
                token = service.register_client("alice")
                handle = await service.submit(
                    [measured_ghz(2), measured_ghz(3)], "statevector",
                    shots=32, seed=1, token=token,
                )
                await handle.result()
                await service.drain(30)
                for _ in range(100):
                    if handle.done():
                        break
                    await asyncio.sleep(0.01)
            finally:
                await service.close()
            after = counters()
            assert after[0] >= before[0] + 2
            assert after[1] >= before[1] + 2

        run(main())
