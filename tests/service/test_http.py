"""Wire-layer tests for :mod:`repro.service.http`: the typed-error →
status-code table (status, body shape, Retry-After), bearer-token scope
enforcement over HTTP, the SSE completion stream, and transport plumbing
(keep-alive, malformed requests, routing)."""

import http.client
import json
import threading

import pytest

from repro.circuits import library
from repro.devices.backend import Backend
from repro.exceptions import QueueTimeout, UnknownJob
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import execute
from repro.service import (
    AuthenticationError,
    BackgroundServer,
    ClientQuota,
    RuntimeService,
    ScopeDenied,
    ServiceClient,
)
from repro.service.http import ERROR_STATUS, error_body, status_for


class GatedBackend(Backend):
    """Blocks every run() on an event, so jobs stay in flight on demand."""

    name = "gated"

    def __init__(self, gate):
        self.gate = gate

    def run(self, circuit, shots=1024, seed=None):
        assert self.gate.wait(30), "gate never released"
        return Result(counts=Counts({"0": shots}), shots=shots)


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


def qasm_bell():
    from repro.circuits.qasm import circuit_to_qasm

    return circuit_to_qasm(measured_bell())


def raw_request(port, method, path, token=None, body=None, headers=None):
    """One raw HTTP exchange, returning (status, headers dict, parsed body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        send_headers = dict(headers or {})
        if token is not None:
            send_headers["Authorization"] = f"Bearer {token}"
        payload = None
        if body is not None:
            payload = body if isinstance(body, bytes) else json.dumps(body).encode()
        conn.request(method, path, body=payload, headers=send_headers)
        response = conn.getresponse()
        data = response.read()
        try:
            parsed = json.loads(data.decode()) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"raw": data}
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    """A BackgroundServer over a two-tenant service (plus an admin).

    Module-scoped: tests share the server and only ever add jobs; the
    admission/quota tests that need bespoke policies build their own."""
    service = RuntimeService(executor="thread", journal=False,
                             accounting=False, allow_anonymous=False)
    service.register_client("alice", token="tok-alice",
                            scopes=("submit", "read"))
    service.register_client("bob", token="tok-bob", scopes=("submit", "read"))
    service.register_client("root", token="tok-admin", scopes=("admin",))
    with BackgroundServer(service) as background:
        yield background


# ----------------------------------------------------------------------
# The error table itself
# ----------------------------------------------------------------------


class TestErrorTable:
    def test_subclasses_precede_bases(self):
        # First match wins, so a subclass listed after its base would be
        # unreachable: QueueTimeout must map to 504 before JobError's 500
        # can shadow it, the typed service errors before ServiceError's
        # 400.  A shadowed entry is only tolerable when the status agrees
        # (QasmError/CircuitError are both 400).
        seen = []
        for cls, status in ERROR_STATUS:
            for earlier, earlier_status in seen:
                if issubclass(cls, earlier) and cls is not earlier:
                    assert status == earlier_status, (
                        f"{cls.__name__} ({status}) is shadowed by its base "
                        f"{earlier.__name__} ({earlier_status})"
                    )
            seen.append((cls, status))

    def test_status_for_picks_most_specific(self):
        assert status_for(QueueTimeout("late")) == 504
        assert status_for(UnknownJob("gone")) == 404
        assert status_for(ScopeDenied("no")) == 403
        assert status_for(AuthenticationError("who")) == 401
        assert status_for(RuntimeError("???")) == 500

    def test_error_body_carries_typed_telemetry(self):
        exc = ScopeDenied("no", client="alice", scope="admin",
                          granted=("submit", "read"))
        info = error_body(exc)["error"]
        assert info["type"] == "ScopeDenied"
        assert info["client"] == "alice"
        assert info["scope"] == "admin"
        assert info["granted"] == ["submit", "read"]

    def test_error_body_omits_unset_telemetry(self):
        info = error_body(UnknownJob("gone"))["error"]
        assert set(info) == {"type", "message"}


# ----------------------------------------------------------------------
# Status codes and body shape over the wire
# ----------------------------------------------------------------------


class TestWireErrorMapping:
    def submit_body(self, **overrides):
        body = {"circuits": qasm_bell(), "backend": "statevector",
                "shots": 16, "seed": 1}
        body.update(overrides)
        return body

    def assert_error(self, parsed, type_name):
        assert set(parsed) == {"error"}
        assert parsed["error"]["type"] == type_name
        assert parsed["error"]["message"]

    def test_unknown_token_is_401(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="nope",
            body=self.submit_body())
        assert status == 401
        self.assert_error(parsed, "AuthenticationError")

    def test_missing_token_is_401_when_anonymous_disabled(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", body=self.submit_body())
        assert status == 401
        self.assert_error(parsed, "AuthenticationError")

    def test_malformed_authorization_header_is_401(self, server):
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v1/jobs/svc-1",
            headers={"Authorization": "Basic dXNlcjpwYXNz"})
        assert status == 401
        self.assert_error(parsed, "AuthenticationError")

    def test_rate_limited_is_429_with_retry_after(self):
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client(
            "alice", token="tok-alice",
            quota=ClientQuota(shots_per_second=1.0, over_quota="reject"))
        with BackgroundServer(service) as background:
            first, _h, _p = raw_request(
                background.port, "POST", "/v1/jobs", token="tok-alice",
                body=self.submit_body(shots=1))
            assert first == 201
            status, headers, parsed = raw_request(
                background.port, "POST", "/v1/jobs", token="tok-alice",
                body=self.submit_body(shots=1000))
            assert status == 429
            self.assert_error(parsed, "RateLimited")
            # Retry-After is integer seconds rounded *up* from the token
            # bucket's refill estimate, and the body carries the float.
            retry_after = headers["Retry-After"]
            assert retry_after == str(int(retry_after))
            assert int(retry_after) >= 1
            assert parsed["error"]["retry_after"] > 0

    def test_quota_exceeded_is_429(self):
        gate = threading.Event()
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client(
            "alice", token="tok-alice",
            quota=ClientQuota(max_in_flight_jobs=1, over_quota="reject"))
        backend = GatedBackend(gate)
        try:
            with BackgroundServer(service) as background:
                # The wire cannot carry a Backend object, so the job that
                # occupies the quota slot goes in through the in-process
                # submit on the server's own loop; the wire then sees a
                # full quota.
                import asyncio

                async def fill():
                    return await service.submit(
                        measured_bell(), backend, shots=16,
                        token="tok-alice")

                future = asyncio.run_coroutine_threadsafe(
                    fill(), background._loop)
                future.result(timeout=30)
                status, _headers, parsed = raw_request(
                    background.port, "POST", "/v1/jobs", token="tok-alice",
                    body=self.submit_body())
                assert status == 429
                self.assert_error(parsed, "QuotaExceeded")
                assert parsed["error"]["in_flight"] == 1
                assert parsed["error"]["limit"] == 1
        finally:
            gate.set()

    def test_bad_json_is_400(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=b"this is not json")
        assert status == 400
        self.assert_error(parsed, "ValueError")

    def test_bad_qasm_is_400_qasm_error(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=self.submit_body(circuits="OPENQASM 3.0; nonsense"))
        assert status == 400
        self.assert_error(parsed, "QasmError")

    def test_unknown_submit_field_is_400(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=self.submit_body(shotz=16))
        assert status == 400
        self.assert_error(parsed, "ValueError")
        assert "shotz" in parsed["error"]["message"]

    def test_unknown_backend_is_400(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=self.submit_body(backend="warp-drive"))
        assert status == 400

    def test_bool_shots_is_400(self, server):
        status, _headers, parsed = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=self.submit_body(shots=True))
        assert status == 400
        self.assert_error(parsed, "ValueError")

    def test_unknown_job_id_is_404(self, server):
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v1/jobs/svc-424242", token="tok-alice")
        assert status == 404
        self.assert_error(parsed, "UnknownJob")
        assert parsed["error"]["job_id"] == "svc-424242"

    def test_unknown_route_is_404(self, server):
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v2/everything", token="tok-alice")
        assert status == 404
        assert parsed["error"]["type"] == "NotFound"

    def test_wrong_method_is_405(self, server):
        status, _headers, parsed = raw_request(
            server.port, "DELETE", "/v1/jobs", token="tok-alice")
        assert status == 405
        assert parsed["error"]["type"] == "MethodNotAllowed"

    def test_wait_timeout_while_blocked_is_504_not_500(self):
        gate = threading.Event()
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client("alice", token="tok-alice")
        backend = GatedBackend(gate)
        try:
            with BackgroundServer(service) as background:
                import asyncio

                async def fill():
                    return await service.submit(
                        measured_bell(), backend, shots=16,
                        token="tok-alice")

                handle = asyncio.run_coroutine_threadsafe(
                    fill(), background._loop).result(timeout=30)
                status, _headers, parsed = raw_request(
                    background.port, "GET",
                    f"/v1/jobs/{handle.job_id}/counts?timeout=0.05",
                    token="tok-alice")
                # The job did not fail; the *request* timed out.
                assert status == 504
                assert set(parsed) == {"error"}
        finally:
            gate.set()

    def test_invalid_timeout_parameter_is_400(self, server):
        _status, _headers, created = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body=self.submit_body())
        status, _headers, parsed = raw_request(
            server.port, "GET",
            f"/v1/jobs/{created['job_id']}/counts?timeout=soon",
            token="tok-alice")
        assert status == 400
        self.assert_error(parsed, "ValueError")

    def test_oversized_body_is_413(self, server):
        from repro.service.http import MAX_BODY_BYTES

        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/v1/jobs")
            conn.putheader("Authorization", "Bearer tok-alice")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Token scopes over the wire
# ----------------------------------------------------------------------


class TestScopeEnforcement:
    def submit(self, port, token):
        status, _headers, parsed = raw_request(
            port, "POST", "/v1/jobs", token=token,
            body={"circuits": qasm_bell(), "backend": "statevector",
                  "shots": 16, "seed": 3})
        assert status == 201
        return parsed["job_id"]

    def test_tenant_cannot_read_another_tenants_job(self, server):
        job_id = self.submit(server.port, "tok-alice")
        status, _headers, parsed = raw_request(
            server.port, "GET", f"/v1/jobs/{job_id}", token="tok-bob")
        assert status == 403
        assert parsed["error"]["type"] == "ScopeDenied"
        assert parsed["error"]["client"] == "bob"

    def test_admin_reads_any_tenants_job(self, server):
        job_id = self.submit(server.port, "tok-alice")
        status, _headers, parsed = raw_request(
            server.port, "GET", f"/v1/jobs/{job_id}", token="tok-admin")
        assert status == 200
        assert parsed["client"] == "alice"

    def test_submit_only_token_cannot_read_even_its_own_job(self):
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False, allow_anonymous=False)
        service.register_client("writer", token="tok-w", scopes=("submit",))
        with BackgroundServer(service) as background:
            job_id = self.submit(background.port, "tok-w")
            status, _headers, parsed = raw_request(
                background.port, "GET", f"/v1/jobs/{job_id}", token="tok-w")
            assert status == 403
            assert parsed["error"]["type"] == "ScopeDenied"

    def test_stats_requires_admin_scope(self, server):
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v1/stats", token="tok-alice")
        assert status == 403
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v1/stats", token="tok-admin")
        assert status == 200
        assert "settlement_errors" in parsed

    def test_healthz_needs_no_auth(self, server):
        status, _headers, parsed = raw_request(
            server.port, "GET", "/v1/healthz")
        assert status == 200
        assert parsed == {"ok": True}


# ----------------------------------------------------------------------
# The happy path: submit, status, results, SSE events, keep-alive
# ----------------------------------------------------------------------


class TestWireHappyPath:
    def test_submit_then_counts_matches_execute(self, server):
        status, _headers, created = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body={"circuits": qasm_bell(), "backend": "statevector",
                  "shots": 128, "seed": 11})
        assert status == 201
        assert created["client"] == "alice"
        assert created["size"] == 1
        job_id = created["job_id"]
        assert job_id.startswith("svc-")

        status, _headers, snapshot = raw_request(
            server.port, "GET", f"/v1/jobs/{job_id}?timeout=30",
            token="tok-alice")
        assert status == 200
        assert snapshot["job_id"] == job_id

        status, _headers, payload = raw_request(
            server.port, "GET", f"/v1/jobs/{job_id}/counts?timeout=30",
            token="tok-alice")
        assert status == 200
        reference = execute(measured_bell(), "statevector", shots=128,
                            seed=11).result().counts
        assert payload["counts"] == [dict(reference)]

    def test_result_endpoint_carries_shots_and_metadata(self, server):
        _status, _headers, created = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body={"circuits": qasm_bell(), "backend": "statevector",
                  "shots": 64, "seed": 5})
        status, _headers, payload = raw_request(
            server.port, "GET",
            f"/v1/jobs/{created['job_id']}/result?timeout=30",
            token="tok-alice")
        assert status == 200
        (result,) = payload["results"]
        assert result["shots"] == 64
        assert sum(result["counts"].values()) == 64
        assert isinstance(result["metadata"], dict)

    def test_batch_submission_returns_ordered_counts(self, server):
        circuits = [qasm_bell(), qasm_bell()]
        _status, _headers, created = raw_request(
            server.port, "POST", "/v1/jobs", token="tok-alice",
            body={"circuits": circuits, "backend": "statevector",
                  "shots": [32, 64], "seed": [1, 2]})
        assert created["size"] == 2
        _status, _headers, payload = raw_request(
            server.port, "GET",
            f"/v1/jobs/{created['job_id']}/counts?timeout=30",
            token="tok-alice")
        assert [sum(c.values()) for c in payload["counts"]] == [32, 64]

    def test_events_stream_one_job_event_per_circuit_then_settled(self, server):
        with ServiceClient(server.url, token="tok-alice") as client:
            job_id = client.submit(
                [measured_bell(), measured_bell()], backend="statevector",
                shots=16, seed=9)
            events = list(client.events(job_id, timeout=30))
        kinds = [kind for kind, _data in events]
        assert kinds == ["job", "job", "settled"]
        assert sorted(data["index"] for kind, data in events
                      if kind == "job") == [0, 1]
        assert all(data["status"] == "done" for kind, data in events
                   if kind == "job")
        settled = events[-1][1]
        assert settled == {"job_id": job_id, "status": "done"}

    def test_events_stream_reports_failed_job(self, server):
        # A backend that raises cannot travel over the wire; plant the
        # failing job in-process on the server's loop and stream its
        # events over HTTP — the terminal frame must say "failed".
        import asyncio

        class FailingBackend(Backend):
            name = "faulty"

            def run(self, circuit, shots=1024, seed=None):
                raise RuntimeError("hardware on fire")

        async def fail():
            return await server.service.submit(
                measured_bell(), FailingBackend(), shots=16,
                token="tok-alice")

        handle = asyncio.run_coroutine_threadsafe(
            fail(), server._loop).result(timeout=30)
        with ServiceClient(server.url, token="tok-alice") as client:
            events = list(client.events(handle.job_id, timeout=30))
        kinds = [kind for kind, _data in events]
        assert kinds == ["job", "settled"]
        # The batch dispatched fine (settled status "done"); the job
        # itself errored, which the per-job frame reports.
        assert events[0][1]["status"] == "error"

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_connection_close_honoured(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("GET", "/v1/healthz",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") in ("close", None)
            response.read()
        finally:
            conn.close()

    def test_malformed_request_line_answers_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            sock.sendall(b"NOT A VALID REQUEST\r\n\r\n")
            data = sock.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]
