"""Restart-recovery tests with real killed interpreters.

The in-process recovery suite (``test_journal.py``) exercises recovery
mechanics; this file proves the actual durability claim: a service whose
*process dies* — including mid-flight, via ``os._exit`` with a job
journaled but unsettled — comes back in a fresh interpreter over the
same ``$REPRO_CACHE_DIR`` and

* answers ``status()``/``result()``/``counts()`` for pre-restart
  ``svc-N`` ids with bit-identical counts,
* re-runs the unsettled job exactly once, and
* still honours the pre-restart bearer token (hashed records persist).

A crash *mid-journal-write* is simulated by truncating entry files: the
store's digest check must turn the torn record into a miss, never a
crash (corruption-is-a-miss, inherited from PR 3).

The drivers run through :func:`repro.runtime.harness.run_driver_process`
— the same subprocess contract the persistence sweeps use.
"""

import hashlib

import pytest

from repro.circuits import library
from repro.runtime import execute
from repro.runtime.harness import run_driver_process
from repro.service import JobJournal

#: Both executors the scheduler can fan out over; the service must be
#: restart-durable regardless of which ran the pre-crash jobs.
EXECUTORS = ("thread", "process")

#: Life 1: serve two seeded jobs to completion, journal a third, then die
#: without yielding to the event loop — deterministically unsettled.
_FIRST_LIFE = """
import asyncio, json, os, sys
from repro.circuits import library
from repro.service import RuntimeService

spec = json.loads(sys.argv[1])

def bell():
    c = library.bell_pair()
    c.measure_all()
    return c

def ghz():
    c = library.ghz_state(3)
    c.measure_all()
    return c

async def main():
    service = RuntimeService(executor=spec["executor"])
    token = service.register_client("alice", token="alice-token", weight=2)
    first = await service.submit(bell(), "statevector", shots=512, seed=11,
                                 token=token)
    second = await service.submit(ghz(), "noisy:ibmqx4", shots=256, seed=7,
                                  token=token)
    report = {
        "first": {"id": first.job_id,
                  "counts": [dict(sorted(c.items()))
                             for c in await first.counts()]},
        "second": {"id": second.job_id,
                   "counts": [dict(sorted(c.items()))
                              for c in await second.counts()]},
    }
    # Settlement journaling runs off-loop; wait until both records are
    # settled ON DISK (a fresh journal over the same dir sees them), so
    # the kill below deterministically tears off only the third job.
    # Bounded: a wedged settlement should fail loudly, not hang the
    # harness until its timeout.
    from repro.service import JobJournal
    deadline = asyncio.get_running_loop().time() + 120.0
    while True:
        durable = JobJournal(cache_dir=os.environ["REPRO_CACHE_DIR"])
        one, two = durable.record(1), durable.record(2)
        if one and two and one["settled"] and two["settled"]:
            break
        if asyncio.get_running_loop().time() > deadline:
            raise RuntimeError(f"settlements never landed on disk: {one} {two}")
        await asyncio.sleep(0.01)
    third = await service.submit(bell(), "statevector", shots=128, seed=3,
                                 token=token)
    report["third"] = {"id": third.job_id}
    print(json.dumps(report))
    sys.stdout.flush()
    # Die without ever yielding to the loop again: the settle machinery
    # (loop callbacks -> journal settlement) can never run, so the third
    # job stays journaled-but-unsettled no matter what the executor did
    # with it.  Worker processes are reaped first purely so they do not
    # inherit our stdout pipe and wedge the harness waiting on EOF.
    from repro.runtime.pool import shutdown_executors
    shutdown_executors(wait=True)
    os._exit(0)

asyncio.run(main())
"""

#: Life 2: recover in a fresh interpreter and serve the pre-restart ids.
_SECOND_LIFE = """
import asyncio, json, sys
from repro.service import RuntimeService

spec = json.loads(sys.argv[1])

async def main():
    service = RuntimeService(executor=spec["executor"])
    summary = await service.recover()
    report = {"summary": summary, "jobs": {}}
    for job_id in spec["job_ids"]:
        handle = service.job(job_id, token=spec.get("token"))
        await handle.wait()
        report["jobs"][job_id] = {
            "status": service.status(job_id, token=spec.get("token")),
            "type": type(handle).__name__,
            "counts": [dict(sorted(c.items()))
                       for c in await handle.counts()],
        }
    report["second_recover"] = await service.recover()
    await service.close()
    print(json.dumps(report))

asyncio.run(main())
"""


@pytest.mark.parametrize("executor", EXECUTORS)
def test_killed_service_recovers_bit_identically(tmp_path, executor):
    spec = {"executor": executor}
    first_life, _ = run_driver_process(_FIRST_LIFE, spec, cache_dir=tmp_path)
    ids = [first_life["first"]["id"], first_life["second"]["id"],
           first_life["third"]["id"]]
    assert ids == ["svc-1", "svc-2", "svc-3"]

    second_life, _ = run_driver_process(
        _SECOND_LIFE,
        {"executor": executor, "job_ids": ids, "token": "alice-token"},
        cache_dir=tmp_path,
    )
    # Two settled jobs restored, the torn-off third re-run exactly once.
    assert second_life["summary"] == {
        "restored": 2, "resubmitted": 1, "skipped": 0,
    }
    assert second_life["second_recover"] == {
        "restored": 0, "resubmitted": 0, "skipped": 3,
    }
    jobs = second_life["jobs"]
    for key in ("first", "second"):
        pre = first_life[key]
        post = jobs[pre["id"]]
        assert post["type"] == "RecoveredJob"
        assert post["status"] == "done"
        assert post["counts"] == pre["counts"]  # bit-identical
    # The recovered third job ran for real, deterministically: its counts
    # must match a local reference run of the same workload.
    bell = library.bell_pair()
    bell.measure_all()
    reference = [
        dict(sorted(r.counts.items()))
        for r in execute([bell], "statevector", shots=128, seed=3).result()
    ]
    third = jobs[first_life["third"]["id"]]
    assert third["type"] == "ServiceJob"
    assert third["status"] == "done"
    assert third["counts"] == reference


def test_crash_mid_journal_write_is_a_miss_not_a_crash(tmp_path):
    first_life, _ = run_driver_process(
        _FIRST_LIFE, {"executor": "thread"}, cache_dir=tmp_path
    )
    journal_dir = tmp_path / "service" / "journal"
    entries = sorted(journal_dir.glob("*.entry"))
    assert len(entries) == 3
    # Simulate the crash landing mid-write: tear every record short.
    # (Atomic rename makes this nearly impossible for the real store, but
    # a dying disk or copied-around cache dir can still produce it.)
    for entry in entries:
        entry.write_bytes(entry.read_bytes()[:37])

    # Loading must not raise, and every torn record is simply gone.
    journal = JobJournal(cache_dir=str(tmp_path))
    assert len(journal) == 0
    assert journal.next_id() == 1

    second_life, _ = run_driver_process(
        _SECOND_LIFE,
        {"executor": "thread", "job_ids": [], "token": "alice-token"},
        cache_dir=tmp_path,
    )
    assert second_life["summary"] == {
        "restored": 0, "resubmitted": 0, "skipped": 0,
    }


def test_single_torn_record_spares_the_rest(tmp_path):
    first_life, _ = run_driver_process(
        _FIRST_LIFE, {"executor": "thread"}, cache_dir=tmp_path
    )
    journal_dir = tmp_path / "service" / "journal"
    before = JobJournal(cache_dir=str(tmp_path))
    assert len(before) == 3
    # Tear exactly the settled first job's record.
    victim_key = ("job", 1)
    digest = hashlib.sha256(repr(victim_key).encode()).hexdigest()[:48]
    victim = journal_dir / f"{digest}.entry"
    assert victim.exists()
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])

    journal = JobJournal(cache_dir=str(tmp_path))
    assert len(journal) == 2  # the miss, not a crash
    assert journal.record(1) is None
    assert journal.record(2) is not None
    # Ids never collide with the survivors.
    assert journal.next_id() == 4

    # Recovery over the remaining records still works end to end.
    second_life, _ = run_driver_process(
        _SECOND_LIFE,
        {"executor": "thread", "job_ids": [first_life["second"]["id"]],
         "token": "alice-token"},
        cache_dir=tmp_path,
    )
    assert second_life["summary"]["restored"] == 1
    assert second_life["summary"]["resubmitted"] == 1
    assert (
        second_life["jobs"][first_life["second"]["id"]]["counts"]
        == first_life["second"]["counts"]
    )
