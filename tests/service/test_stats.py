"""Unit tests for the service observability primitives."""

import pytest

from repro.service import ClientStats, LatencyWindow, RateMeter


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLatencyWindow:
    def test_empty_snapshot(self):
        snapshot = LatencyWindow().snapshot()
        assert snapshot == {
            "window_count": 0, "total_count": 0, "mean_s": None,
            "p50_s": None, "p99_s": None, "max_s": None,
        }

    def test_percentiles_nearest_rank(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 0.001 .. 0.100
            window.add(ms / 1000.0)
        assert window.percentile(50) == pytest.approx(0.050)
        assert window.percentile(99) == pytest.approx(0.099)
        snapshot = window.snapshot()
        assert snapshot["window_count"] == 100
        assert snapshot["total_count"] == 100
        assert snapshot["p50_s"] == pytest.approx(0.050)
        assert snapshot["p99_s"] == pytest.approx(0.099)
        assert snapshot["max_s"] == pytest.approx(0.100)
        assert snapshot["mean_s"] == pytest.approx(0.0505)

    def test_single_sample(self):
        window = LatencyWindow()
        window.add(0.25)
        assert window.percentile(50) == 0.25
        assert window.percentile(99) == 0.25

    def test_snapshot_and_percentile_agree(self):
        # One nearest-rank implementation, not two that can drift.
        window = LatencyWindow()
        for ms in (5, 1, 9, 3, 7, 2, 8):
            window.add(ms / 1000.0)
        snapshot = window.snapshot()
        assert snapshot["p50_s"] == window.percentile(50)
        assert snapshot["p99_s"] == window.percentile(99)

    def test_window_counts_split_window_from_lifetime(self):
        window = LatencyWindow(maxlen=10)
        window.add(9.0)  # the spike, about to fall out of the window
        for _ in range(20):
            window.add(0.001)
        snapshot = window.snapshot()
        assert snapshot["window_count"] == 10  # what mean/percentiles cover
        assert snapshot["total_count"] == 21  # lifetime samples
        assert snapshot["max_s"] == 9.0  # lifetime max survives eviction
        assert snapshot["p99_s"] == pytest.approx(0.001)
        # The field split exists so this arithmetic is honest: the window
        # mean times the *window* count is a real sum over real samples.
        assert snapshot["mean_s"] * snapshot["window_count"] == pytest.approx(
            0.001 * 10
        )

    @pytest.mark.parametrize("percent", [0, -1, 100.5, 200])
    def test_percentile_rejects_out_of_range_percent(self, percent):
        window = LatencyWindow()
        window.add(0.5)
        with pytest.raises(ValueError, match=r"\(0, 100\]"):
            window.percentile(percent)

    def test_percentile_100_is_window_max(self):
        window = LatencyWindow()
        for ms in (3, 1, 2):
            window.add(ms / 1000.0)
        assert window.percentile(100) == pytest.approx(0.003)

    def test_garbage_samples_ignored(self):
        window = LatencyWindow()
        window.add(-1.0)
        window.add(float("nan"))
        window.add(float("inf"))
        snapshot = window.snapshot()
        assert snapshot["window_count"] == 0
        assert snapshot["total_count"] == 0


class TestRateMeter:
    def test_zero_without_events(self):
        assert RateMeter(clock=FakeClock()).rate() == 0.0

    def test_rate_over_elapsed_window(self):
        clock = FakeClock()
        meter = RateMeter(window_seconds=60, clock=clock)
        for _ in range(10):
            meter.tick()
            clock.advance(1.0)
        assert meter.rate() == pytest.approx(1.0)
        assert meter.total == 10

    def test_old_events_fall_out_of_window(self):
        clock = FakeClock()
        meter = RateMeter(window_seconds=10, clock=clock)
        meter.tick(100)
        clock.advance(30.0)
        assert meter.rate() == 0.0
        assert meter.total == 100  # lifetime total is not windowed

    def test_tick_counts(self):
        clock = FakeClock()
        meter = RateMeter(window_seconds=60, clock=clock)
        meter.tick(5)
        clock.advance(5.0)
        assert meter.rate() == pytest.approx(1.0)


class TestClientStats:
    def test_bump_and_snapshot(self):
        stats = ClientStats()
        stats.bump("submitted_batches")
        stats.bump("submitted_jobs", 4)
        stats.queue_latency.add(0.01)
        snapshot = stats.snapshot()
        assert snapshot["submitted_batches"] == 1
        assert snapshot["submitted_jobs"] == 4
        assert snapshot["completed_batches"] == 0
        assert snapshot["queue_latency"]["total_count"] == 1

    def test_unknown_field_raises_valueerror_naming_fields(self):
        with pytest.raises(ValueError) as excinfo:
            ClientStats().bump("not_a_field")
        message = str(excinfo.value)
        assert "not_a_field" in message
        # The error must name the valid fields so a typo is self-diagnosing.
        for field in ClientStats.FIELDS:
            assert field in message

    def test_single_event_rate_is_sane(self):
        # Regression: with one event in the window the old denominator
        # (now - first event) clamped to 1e-9 and a single completion
        # reported ~1e9 events/sec.
        clock = FakeClock()
        meter = RateMeter(window_seconds=60.0, clock=clock)
        clock.advance(5.0)
        meter.tick()
        assert meter.rate() <= 1.0  # 1 event / 5s elapsed = 0.2
        assert abs(meter.rate() - 1.0 / 5.0) < 1e-9
