"""Integration tests for :class:`repro.service.RuntimeService`: the async
submit/stream/collect surface, admission control (auth, quotas, rate
limits), queue policies through the service, and the determinism contract
(async path counts are bit-identical to plain ``execute()``)."""

import asyncio
import threading

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import JobError, QueueTimeout, ServiceError
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime import execute
from repro.service import (
    AuthenticationError,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    RuntimeService,
    TokenAuthenticator,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class RecordingBackend(Backend):
    """Logs every run()'s circuit name; optionally gates on an event."""

    name = "recorder"

    def __init__(self, log, gate=None):
        self.log = log
        self.gate = gate

    def run(self, circuit, shots=1024, seed=None):
        if self.gate is not None:
            assert self.gate.wait(30), "gate never released"
        self.log.append(circuit.name)
        return Result(counts=Counts({"0": shots}), shots=shots)


class FailingBackend(Backend):
    name = "faulty"

    def run(self, circuit, shots=1024, seed=None):
        raise RuntimeError("hardware on fire")


def named_circuit(name):
    circuit = QuantumCircuit(1, name=name)
    circuit.measure_all()
    return circuit


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Submission, collection, and the determinism contract
# ----------------------------------------------------------------------


class TestSubmitAndCollect:
    def test_counts_bit_identical_to_plain_execute(self):
        """The whole point of the service layer: it decides when and
        whether work runs, never what it computes."""
        circuits = [measured_bell(), library.ghz_state(3)]
        circuits[1].measure_all()
        for backend in ("statevector", "noisy:ibmqx4"):
            reference = [
                r.counts
                for r in execute(circuits, backend, shots=512, seed=11).result()
            ]

            async def main():
                async with RuntimeService() as service:
                    job = await service.submit(
                        circuits, backend, shots=512, seed=11
                    )
                    return await job.counts()

            assert run(main()) == reference

    def test_await_handle_returns_ordered_results(self):
        async def main():
            async with RuntimeService() as service:
                job = await service.submit(
                    [named_circuit("a"), named_circuit("b")],
                    RecordingBackend([]),
                    shots=8,
                )
                results = await job
                return [r.shots for r in results]

        assert run(main()) == [8, 8]

    def test_job_ids_are_stable_and_unique(self):
        async def main():
            async with RuntimeService() as service:
                jobs = [
                    await service.submit(named_circuit(f"c{i}"),
                                         RecordingBackend([]), shots=4)
                    for i in range(3)
                ]
                ids = [job.job_id for job in jobs]
                assert all(job_id.startswith("svc-") for job_id in ids)
                assert len(set(ids)) == 3
                for job in jobs:
                    await job.wait(timeout=30)
                    assert job.status() == "done"
                    assert job.done()

        run(main())

    def test_streaming_as_completed_exactly_once(self):
        async def main():
            async with RuntimeService() as service:
                handles = [
                    await service.submit(named_circuit(f"s{i}"),
                                         RecordingBackend([]), shots=4)
                    for i in range(5)
                ]
                seen = []
                async for handle in service.as_completed(handles, timeout=30):
                    seen.append(handle.job_id)
                assert sorted(seen) == sorted(h.job_id for h in handles)
                assert len(seen) == len(set(seen)) == 5

        run(main())

    def test_per_job_streaming_within_a_submission(self):
        async def main():
            async with RuntimeService() as service:
                handle = await service.submit(
                    [named_circuit(f"j{i}") for i in range(4)],
                    RecordingBackend([]),
                    shots=4,
                )
                streamed = []
                async for job in handle.as_completed(timeout=30):
                    assert job.done()
                    streamed.append(job)
                assert len(streamed) == 4
                assert len({id(job) for job in streamed}) == 4

        run(main())

    def test_service_is_bound_to_one_loop(self):
        service = RuntimeService()

        async def submit_once():
            await service.submit(named_circuit("x"), RecordingBackend([]),
                                 shots=4)

        run(submit_once())
        with pytest.raises(ServiceError, match="another event loop"):
            run(submit_once())
        service.shutdown()


# ----------------------------------------------------------------------
# Terminal states: failures, cancellation, timeouts
# ----------------------------------------------------------------------


class TestTerminalStates:
    def test_streaming_includes_failed_and_cancelled_jobs(self):
        """as_completed() never loses a handle: completed, failed,
        dropped and cancelled submissions are all yielded exactly once."""
        log = []
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread", max_in_flight=1)
            try:
                blocker = await service.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                dropped = await service.submit(
                    named_circuit("late"), RecordingBackend(log), shots=4,
                    deadline=0.05,
                )
                cancelled = await service.submit(
                    named_circuit("doomed"), RecordingBackend(log), shots=4
                )
                failing = await service.submit(
                    named_circuit("faulty"), FailingBackend(), shots=4
                )
                good = await service.submit(
                    named_circuit("fine"), RecordingBackend(log), shots=4
                )
                await dropped.wait(timeout=30)  # deadline expires while queued
                assert cancelled.cancel()
                gate.set()

                handles = [blocker, dropped, cancelled, failing, good]
                seen = []
                async for handle in service.as_completed(handles, timeout=30):
                    seen.append(handle.job_id)
                assert sorted(seen) == sorted(h.job_id for h in handles)
                assert len(seen) == len(set(seen))

                assert blocker.status() == "done"
                assert good.status() == "done"
                assert dropped.status() == "dropped"
                assert cancelled.status() == "cancelled"
                with pytest.raises(QueueTimeout):
                    await dropped.result()
                with pytest.raises(JobError, match="cancelled"):
                    await cancelled.result()
                with pytest.raises(JobError, match="hardware on fire"):
                    await failing.result()

                stats = service.stats()["clients"]["anonymous"]
                assert stats["dropped_batches"] == 1
                assert stats["cancelled_batches"] == 1
                assert stats["failed_batches"] == 1
                assert stats["completed_batches"] == 2  # blocker + good
            finally:
                gate.set()
                await service.close()

        run(main())

    def test_result_timeout_while_queued_raises_queue_timeout(self):
        """Satellite: a timeout with the batch still queued surfaces the
        typed QueueTimeout (position + wait time), via the async path."""
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread", max_in_flight=1)
            try:
                await service.submit(
                    named_circuit("blocker"),
                    RecordingBackend([], gate=gate),
                    shots=4,
                )
                stuck = await service.submit(
                    named_circuit("stuck"), RecordingBackend([]), shots=4
                )
                with pytest.raises(QueueTimeout) as excinfo:
                    await stuck.result(timeout=0.05)
                assert excinfo.value.client == "anonymous"
                assert excinfo.value.waited > 0
                assert excinfo.value.queue_position == 0
                assert excinfo.value.queued_batches == 1
            finally:
                gate.set()
                await service.close()

        run(main())

    def test_dispatch_failure_is_a_failed_handle(self):
        async def main():
            async with RuntimeService() as service:
                handle = await service.submit(
                    named_circuit("x"), "no-such-backend", shots=4
                )
                await handle.wait(timeout=30)
                assert handle.status() == "failed"
                with pytest.raises(JobError, match="failed to dispatch"):
                    await handle.result()

        run(main())

    def test_deadline_reprioritize_jumps_the_queue(self):
        """deadline_action='reprioritize' boosts an expired batch ahead of
        higher-priority work instead of dropping it."""
        log = []
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread", max_in_flight=1)
            try:
                blocker = await service.submit(
                    named_circuit("blocker"), RecordingBackend(log, gate=gate),
                    shots=4,
                )
                await blocker.jobs(timeout=10)  # pinned in flight, gated
                important = await service.submit(
                    named_circuit("important"), RecordingBackend(log),
                    shots=4, priority=5,
                )
                boosted = await service.submit(
                    named_circuit("boosted"), RecordingBackend(log), shots=4,
                    priority=0, deadline=0.05, deadline_action="reprioritize",
                )
                await asyncio.sleep(0.2)  # let the deadline expire, queued
                gate.set()
                await asyncio.gather(important.result(), boosted.result())
                assert log.index("boosted") < log.index("important")
            finally:
                gate.set()
                await service.close()

        run(main())


# ----------------------------------------------------------------------
# Admission control: authentication, quotas, rate limits
# ----------------------------------------------------------------------


class TestAdmission:
    def test_anonymous_disabled_requires_token(self):
        async def main():
            service = RuntimeService(allow_anonymous=False)
            try:
                with pytest.raises(AuthenticationError):
                    await service.submit(named_circuit("x"),
                                         RecordingBackend([]), shots=4)
                with pytest.raises(AuthenticationError):
                    await service.submit(named_circuit("x"),
                                         RecordingBackend([]), shots=4,
                                         token="bogus")
                assert service.stats()["rejected_auth"] == 2
                token = service.register_client("alice")
                handle = await service.submit(
                    named_circuit("x"), RecordingBackend([]), shots=4,
                    token=token,
                )
                assert handle.client == "alice"
                await handle.result()
            finally:
                await service.close()

        run(main())

    def test_revoked_token_stops_authenticating(self):
        async def main():
            service = RuntimeService(allow_anonymous=False)
            try:
                token = service.register_client("alice")
                service.authenticator.revoke(token)
                with pytest.raises(AuthenticationError):
                    await service.submit(named_circuit("x"),
                                         RecordingBackend([]), shots=4,
                                         token=token)
            finally:
                await service.close()

        run(main())

    def test_concurrency_quota_rejects_over_limit(self):
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread")
            try:
                token = service.register_client(
                    "alice", quota=ClientQuota(max_in_flight_jobs=2)
                )
                backend = RecordingBackend([], gate=gate)
                await service.submit(named_circuit("a"), backend, shots=4,
                                     token=token)
                await service.submit(named_circuit("b"), backend, shots=4,
                                     token=token)
                with pytest.raises(QuotaExceeded) as excinfo:
                    await service.submit(named_circuit("c"), backend, shots=4,
                                         token=token)
                assert excinfo.value.client == "alice"
                assert excinfo.value.in_flight == 2
                assert excinfo.value.limit == 2
                stats = service.stats()["clients"]["alice"]
                assert stats["rejected_quota"] == 1
            finally:
                gate.set()
                await service.close()

        run(main())

    def test_quota_queue_policy_applies_backpressure(self):
        """over_quota='queue' waits for capacity instead of raising —
        and the waiter is admitted once in-flight work settles."""
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread")
            try:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(max_in_flight_jobs=1,
                                      over_quota="queue"),
                )
                backend = RecordingBackend([], gate=gate)
                first = await service.submit(named_circuit("first"), backend,
                                             shots=4, token=token)
                second_task = asyncio.ensure_future(
                    service.submit(named_circuit("second"),
                                   RecordingBackend([]), shots=4, token=token)
                )
                await asyncio.sleep(0.05)
                assert not second_task.done()  # backpressured, not rejected
                gate.set()
                second = await asyncio.wait_for(second_task, timeout=30)
                await asyncio.gather(first.result(), second.result())
                stats = service.stats()["clients"]["alice"]
                assert stats["queued_waits"] >= 1
                assert stats["rejected_quota"] == 0
            finally:
                gate.set()
                await service.close()

        run(main())

    def test_oversized_batch_admitted_when_idle_under_queue_policy(self):
        """A single submission larger than the whole concurrency limit is
        admitted once nothing is in flight (debt model, like the
        scheduler and the token bucket) — under over_quota='queue' it
        must not wait forever on a settle that can never come."""

        async def main():
            async with RuntimeService() as service:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(max_in_flight_jobs=2,
                                      over_quota="queue"),
                )
                handle = await asyncio.wait_for(
                    service.submit(
                        [named_circuit(f"big{i}") for i in range(5)],
                        RecordingBackend([]), shots=4, token=token,
                    ),
                    timeout=30,
                )
                results = await handle.result()
                assert len(results) == 5

        run(main())

    def test_oversized_batch_waits_until_idle_then_admits(self):
        """With work in flight the oversized batch backpressures; the
        settle wakes it and the empty ledger admits it."""
        gate = threading.Event()

        async def main():
            service = RuntimeService(executor="thread")
            try:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(max_in_flight_jobs=2,
                                      over_quota="queue"),
                )
                first = await service.submit(
                    named_circuit("first"), RecordingBackend([], gate=gate),
                    shots=4, token=token,
                )
                big_task = asyncio.ensure_future(
                    service.submit(
                        [named_circuit(f"big{i}") for i in range(5)],
                        RecordingBackend([]), shots=4, token=token,
                    )
                )
                await asyncio.sleep(0.05)
                assert not big_task.done()  # backpressured behind `first`
                gate.set()
                big = await asyncio.wait_for(big_task, timeout=30)
                await first.result()
                assert len(await big.result()) == 5
            finally:
                gate.set()
                await service.close()

        run(main())

    def test_generator_circuits_are_materialized_once(self):
        """Admission math must not consume an iterator input — the same
        circuits that were counted reach the scheduler."""

        async def main():
            async with RuntimeService() as service:
                handle = await service.submit(
                    (named_circuit(f"g{i}") for i in range(3)),
                    RecordingBackend([]), shots=8,
                )
                assert handle.size == 3
                results = await handle.result()
                assert len(results) == 3
                assert all(r.shots == 8 for r in results)

        run(main())

    def test_failed_submission_refunds_rate_budget(self):
        """A scheduler-side rejection after admission rolls back both the
        concurrency charge and the shots debited from the bucket."""
        clock = FakeClock()

        async def main():
            service = RuntimeService(clock=clock)
            try:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(max_in_flight_jobs=4,
                                      shots_per_second=10, burst_shots=100),
                )
                with pytest.raises(ValueError, match="priority"):
                    await service.submit(named_circuit("bad"),
                                         RecordingBackend([]), shots=100,
                                         token=token, priority=-1)
                state = service._clients["alice"]
                assert state.in_flight_jobs == 0
                assert state.bucket.tokens == pytest.approx(100.0)
                ok = await service.submit(named_circuit("ok"),
                                          RecordingBackend([]), shots=100,
                                          token=token)
                await ok.result()
            finally:
                await service.close()

        run(main())

    def test_rate_limit_queue_policy_paces_with_injected_sleep(self):
        """over_quota='queue' rate limiting is deterministic when the
        injected sleep advances the injected clock (they must agree)."""
        clock = FakeClock()

        async def fake_sleep(seconds):
            clock.advance(seconds)

        async def main():
            service = RuntimeService(clock=clock, sleep=fake_sleep)
            try:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(shots_per_second=10, burst_shots=100,
                                      over_quota="queue"),
                )
                first = await service.submit(
                    named_circuit("a"), RecordingBackend([]), shots=100,
                    token=token,
                )
                second = await service.submit(
                    named_circuit("b"), RecordingBackend([]), shots=100,
                    token=token,
                )
                await asyncio.gather(first.result(), second.result())
                stats = service.stats()["clients"]["alice"]
                assert stats["queued_waits"] >= 1
                assert stats["rejected_rate"] == 0
            finally:
                await service.close()

        run(main())

    def test_rate_limit_rejects_with_retry_after(self):
        clock = FakeClock()

        async def main():
            service = RuntimeService(clock=clock)
            try:
                token = service.register_client(
                    "alice",
                    quota=ClientQuota(shots_per_second=10, burst_shots=100),
                )
                handle = await service.submit(
                    named_circuit("a"), RecordingBackend([]), shots=100,
                    token=token,
                )
                await handle.result()
                with pytest.raises(RateLimited) as excinfo:
                    await service.submit(named_circuit("b"),
                                         RecordingBackend([]), shots=100,
                                         token=token)
                assert excinfo.value.client == "alice"
                assert excinfo.value.retry_after == pytest.approx(10.0)
                assert service.stats()["clients"]["alice"]["rejected_rate"] == 1
                # The bucket refills with (fake) time.
                clock.advance(10.0)
                ok = await service.submit(named_circuit("c"),
                                          RecordingBackend([]), shots=100,
                                          token=token)
                await ok.result()
            finally:
                await service.close()

        run(main())


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


class TestServiceStats:
    def test_stats_snapshot_shape_and_latency(self):
        async def main():
            async with RuntimeService() as service:
                token = service.register_client("alice", weight=2)
                handles = [
                    await service.submit(named_circuit(f"s{i}"),
                                         RecordingBackend([]), shots=4,
                                         token=token)
                    for i in range(4)
                ]
                async for _handle in service.as_completed(handles, timeout=30):
                    pass
                stats = service.stats()
                for key in ("uptime_s", "jobs_per_second", "completed_jobs",
                            "queued_batches", "in_flight_jobs",
                            "queue_latency", "clients"):
                    assert key in stats
                assert stats["completed_jobs"] == 4
                assert stats["jobs_per_second"] > 0
                latency = stats["queue_latency"]
                assert latency["window_count"] == 4
                assert latency["total_count"] == 4
                assert latency["p50_s"] is not None
                assert latency["p99_s"] >= latency["p50_s"]
                alice = stats["clients"]["alice"]
                assert alice["weight"] == 2
                assert alice["completed_batches"] == 4
                assert alice["in_flight_jobs"] == 0
                assert alice["scheduler"]["dispatched_batches"] == 4

        run(main())

    def test_anonymous_client_appears_after_first_submission(self):
        async def main():
            async with RuntimeService() as service:
                handle = await service.submit(named_circuit("x"),
                                              RecordingBackend([]), shots=4)
                await handle.result()
                stats = service.stats()
                anonymous = stats["clients"][TokenAuthenticator.ANONYMOUS]
                assert anonymous["completed_batches"] == 1

        run(main())


# ----------------------------------------------------------------------
# Settlement bookkeeping failures and the settle/timeout race
# ----------------------------------------------------------------------


class BrokenJournal:
    """Delegates to a real journal but fails every settlement write."""

    def __init__(self, inner):
        self._inner = inner
        self.durable = inner.durable

    def __bool__(self):
        return True  # an empty journal is still a journal

    def __len__(self):
        return len(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def record_settlement(self, *args, **kwargs):
        raise OSError("disk wedged")


class TestSettlementErrors:
    def test_failed_journal_write_is_counted_not_swallowed(
        self, tmp_path, caplog
    ):
        """Satellite regression: a failing settlement write used to vanish
        into a bare ``except Exception: pass``.  Now every failure bumps
        ``stats()['settlement_errors']`` and the first failure of each
        (stage, exception class) pair logs one warning."""
        import logging

        from repro.service import JobJournal

        journal = BrokenJournal(JobJournal(cache_dir=str(tmp_path)))

        async def main():
            async with RuntimeService(journal=journal,
                                      accounting=False) as service:
                with caplog.at_level(logging.WARNING, logger="repro.service"):
                    for i in range(3):
                        handle = await service.submit(
                            named_circuit(f"job{i}"), RecordingBackend([]),
                            shots=4,
                        )
                        await handle.result()
                    # The journal write runs off-loop; wait for the errors
                    # to be counted rather than sleeping blind.
                    for _ in range(200):
                        if service.stats()["settlement_errors"] >= 3:
                            break
                        await asyncio.sleep(0.01)
                stats = service.stats()
                assert stats["settlement_errors"] == 3
                warnings = [r for r in caplog.records
                            if "settlement journal failed" in r.message]
                # Three failures of one class: exactly one warning.
                assert len(warnings) == 1

        run(main())

    def test_settlement_errors_zero_on_healthy_service(self):
        async def main():
            async with RuntimeService() as service:
                handle = await service.submit(named_circuit("fine"),
                                              RecordingBackend([]), shots=4)
                await handle.result()
                assert service.stats()["settlement_errors"] == 0

        run(main())


class TestSettleTimeoutRace:
    """Satellite regression for the settle/timeout race in
    ``ServiceJob._await_settled``: the batch reaches a terminal status but
    the ``call_soon_threadsafe`` settlement callback has not run on the
    loop yet when ``wait(timeout=...)`` expires.  The old code raised a
    spurious ``JobError`` for finished work."""

    class StalledBatch:
        """A batch frozen at a terminal status whose settle callback never
        fires — the worst-case ordering of the race, held still."""

        def __init__(self, status="done"):
            self._status = status

        def status(self):
            return self._status

        def jobs(self, timeout=None):
            raise AssertionError("terminal batch must not re-enter the queue")

    def make_handle(self, batch):
        from repro.service.service import ServiceJob

        handle = ServiceJob.__new__(ServiceJob)
        handle.job_id = "svc-race"
        handle.batch = batch
        handle._settled = asyncio.Event()  # never set: the stalled loop
        return handle

    @pytest.mark.parametrize("status", ["done", "failed", "dropped",
                                        "cancelled"])
    def test_wait_returns_for_terminal_batch_despite_unsettled_event(
        self, status
    ):
        async def main():
            handle = self.make_handle(self.StalledBatch(status))
            # Must return, not raise: the work IS finished.
            await handle._await_settled(timeout=0.05)

        run(main())

    def test_wait_still_times_out_while_running(self):
        async def main():
            batch = self.StalledBatch("running")
            batch.jobs = lambda timeout=None: None  # not queued: no re-raise
            handle = self.make_handle(batch)
            with pytest.raises(JobError, match="not finished"):
                await handle._await_settled(timeout=0.05)

        run(main())

    def test_wait_result_collects_after_race(self):
        """End-to-end shape of the race: wait() times out against a
        terminal batch, then result() collects normally."""

        class TerminalBatch(self.StalledBatch):
            def __init__(self):
                super().__init__("done")
                self.collected = False

            def jobs(self, timeout=None):
                self.collected = True

                class JobSetStub:
                    def result(self):
                        return ["the-results"]

                return JobSetStub()

        async def main():
            batch = TerminalBatch()
            handle = self.make_handle(batch)
            handle._loop = asyncio.get_running_loop()
            await handle.wait(timeout=0.05)  # race: returns, no JobError
            assert await handle.result(timeout=0.05) == ["the-results"]
            assert batch.collected

        run(main())
