"""Unit tests for the write-ahead job journal and in-process recovery.

Cross-*process* durability (a real restarted interpreter) lives in
``test_durability.py``; this file pins the journal's own contract —
write-ahead ordering, settlement, degraded (unpicklable) records,
reload-from-disk — plus the service-level ``recover()`` semantics that
can be exercised without forking: recovered handles under the same
``svc-N`` ids, bit-identical journaled counts, exactly-once re-runs.
"""

import asyncio
import threading

import pytest

from repro.circuits import library
from repro.exceptions import JobError, ServiceError
from repro.runtime import execute
from repro.service import JobJournal, RecoveredJob, RuntimeService


def run(coro):
    return asyncio.run(coro)


def measured_bell():
    circuit = library.bell_pair()
    circuit.measure_all()
    return circuit


class TestJobJournal:
    def test_submission_then_settlement_roundtrip(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        assert journal.durable
        job_id = journal.next_id()
        journal.record_submission(
            job_id, "alice", [measured_bell()], "statevector",
            shots=256, seed=7, priority=1, weight=2,
        )
        record = journal.record(job_id)
        assert record["job_id"] == f"svc-{job_id}"
        assert record["client"] == "alice"
        assert record["settled"] is False
        assert record["status"] == "submitted"
        assert record["recoverable"] is True
        assert record["fingerprints"] == [measured_bell().fingerprint()]
        journal.record_settlement(
            job_id, "done", counts=[{"00": 128, "11": 128}], shots=[256]
        )
        record = journal.record(job_id)
        assert record["settled"] is True
        assert record["status"] == "done"
        assert record["counts"] == [{"00": 128, "11": 128}]
        assert record["circuits"] is None  # payload dropped once settled
        assert journal.unsettled() == []

    def test_reload_from_disk_resumes_ids(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        first = journal.next_id()
        journal.record_submission(
            first, "alice", [measured_bell()], "statevector", 128, 1
        )
        reloaded = JobJournal(cache_dir=str(tmp_path))
        assert len(reloaded) == 1
        assert reloaded.record(first)["client"] == "alice"
        # Ids stay monotonic across restarts: no svc-N collision.
        assert reloaded.next_id() == first + 1

    def test_unpicklable_payload_degrades_not_raises(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        job_id = journal.next_id()
        unpicklable = threading.Lock()
        record = journal.record_submission(
            job_id, "alice", [measured_bell()], unpicklable, 128, 1
        )
        assert record["recoverable"] is False
        assert record["circuits"] is None
        assert isinstance(record["backend"], str)
        # The degraded record still settles (the counts survive).
        journal.record_settlement(job_id, "done", counts=[{"0": 128}])
        assert JobJournal(cache_dir=str(tmp_path)).record(job_id)[
            "counts"
        ] == [{"0": 128}]

    def test_settlement_validates_status_and_id(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        with pytest.raises(ServiceError):
            journal.record_settlement(999, "done")
        job_id = journal.next_id()
        journal.record_submission(job_id, "a", [measured_bell()], "sv", 1, 1)
        with pytest.raises(ServiceError):
            journal.record_settlement(job_id, "exploded")

    def test_settlement_journals_error_type_and_message(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        job_id = journal.next_id()
        journal.record_submission(job_id, "a", [measured_bell()], "sv", 1, 1)
        journal.record_settlement(
            job_id, "failed", error=RuntimeError("hardware on fire")
        )
        error = journal.record(job_id)["error"]
        assert error == {"type": "RuntimeError", "message": "hardware on fire"}

    def test_memory_only_journal_is_not_durable(self):
        journal = JobJournal()
        assert not journal.durable
        job_id = journal.next_id()
        journal.record_submission(job_id, "a", [measured_bell()], "sv", 8, 0)
        assert len(journal) == 1


class TestServiceRecovery:
    def test_recover_restores_settled_jobs_bit_identically(self, tmp_path):
        circuit = measured_bell()
        reference = [
            dict(r.counts)
            for r in execute([circuit], "statevector", shots=512, seed=11).result()
        ]

        async def first_life():
            service = RuntimeService(cache_dir=str(tmp_path))
            job = await service.submit(circuit, "statevector", shots=512,
                                       seed=11)
            counts = [dict(c) for c in await job.counts()]
            await service.drain()
            await service.close()
            return job.job_id, counts

        job_id, before = run(first_life())
        assert before == reference

        async def second_life():
            service = RuntimeService(cache_dir=str(tmp_path))
            summary = await service.recover()
            handle = service.job(job_id)
            counts = [dict(c) for c in await handle.counts()]
            status = service.status(job_id)
            await service.close()
            return summary, handle, counts, status

        summary, handle, after, status = run(second_life())
        assert summary["restored"] >= 1 and summary["resubmitted"] == 0
        assert isinstance(handle, RecoveredJob)
        assert status == "done"
        assert after == before  # bit-identical across the restart
        assert all(r.metadata["recovered"] for r in run(
            second_life_result(tmp_path, job_id)
        ))

    def test_recover_reruns_unsettled_job_exactly_once(self, tmp_path):
        circuit = measured_bell()
        journal = JobJournal(cache_dir=str(tmp_path))
        job_id = journal.next_id()
        journal.record_submission(
            job_id, "alice", [circuit], "statevector", shots=256, seed=3,
            weight=2,
        )
        reference = [
            dict(r.counts)
            for r in execute([circuit], "statevector", shots=256, seed=3).result()
        ]

        async def recovered_life():
            service = RuntimeService(cache_dir=str(tmp_path))
            first = await service.recover()
            handle = service.job(f"svc-{job_id}")
            counts = [dict(c) for c in await handle.counts()]
            await service.drain()
            second = await service.recover()  # idempotent: nothing left
            await service.close()
            return first, second, counts

        first, second, counts = run(recovered_life())
        assert first["resubmitted"] == 1
        assert second == {"restored": 0, "resubmitted": 0, "skipped": 1}
        assert counts == reference
        # The re-run settled under its original id.
        record = JobJournal(cache_dir=str(tmp_path)).record(job_id)
        assert record["settled"] and record["status"] == "done"

    def test_recover_settles_unrecoverable_records_as_failed(self, tmp_path):
        journal = JobJournal(cache_dir=str(tmp_path))
        job_id = journal.next_id()
        record = journal.record_submission(
            job_id, "alice", [measured_bell()], threading.Lock(), 128, 1
        )
        assert not record["recoverable"]

        async def recover_life():
            service = RuntimeService(cache_dir=str(tmp_path))
            summary = await service.recover()
            handle = service.job(f"svc-{job_id}")
            try:
                await handle.result()
            except JobError as exc:
                failure = str(exc)
            else:
                failure = None
            await service.close()
            return summary, handle.status(), failure

        summary, status, failure = run(recover_life())
        assert summary == {"restored": 0, "resubmitted": 0, "skipped": 1}
        assert status == "failed"
        assert failure is not None and "restart" in failure

    def test_journal_false_disables_durability(self, tmp_path):
        async def live():
            service = RuntimeService(
                cache_dir=str(tmp_path), journal=False, accounting=False
            )
            job = await service.submit(measured_bell(), "statevector",
                                       shots=64, seed=0)
            await job.wait()
            stats = service.stats()
            await service.close()
            return stats

        stats = run(live())
        assert stats["journal"] is None
        assert stats["accounting"] is None

    def test_submit_failure_settles_journal_record(self, tmp_path):
        async def live():
            service = RuntimeService(cache_dir=str(tmp_path))
            with pytest.raises(ValueError):
                await service.submit(measured_bell(), "statevector",
                                     shots=64, priority=-1)
            await service.close()

        run(live())
        records = JobJournal(cache_dir=str(tmp_path)).records()
        assert len(records) == 1
        assert records[0]["settled"] and records[0]["status"] == "failed"
        assert records[0]["error"]["type"] == "ValueError"


async def second_life_result(tmp_path, job_id):
    service = RuntimeService(cache_dir=str(tmp_path))
    await service.recover()
    results = await service.result(job_id)
    await service.close()
    return results
