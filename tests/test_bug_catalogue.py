"""Systematic bug catalogue: which assertion family catches which bug.

Huang & Martonosi's bug study (the paper's motivation) found quantum
programs fail in a handful of recurring ways.  This suite injects each bug
class into a known-good program and verifies the appropriate dynamic
assertion detects it with the theoretically expected probability — and
that no assertion fires on the correct program (no false positives).

Detection probabilities here are *exact* (branch enumeration), so the
expected values are closed-form.
"""

import math

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bell_pair, ghz_state
from repro.core.injector import AssertionInjector
from repro.simulators.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


def detection_probability(injector: AssertionInjector) -> float:
    """Exact probability that at least one assertion fires."""
    probabilities = SIM.exact_probabilities(injector.circuit)
    clbits = injector.assertion_clbits
    passing = 0.0
    for key, p in probabilities.items():
        if all(
            record.passes(key) for record in injector.records
        ):
            passing += p
    return 1.0 - passing


class TestNoFalsePositives:
    """Correct programs must never trip any assertion."""

    def test_bell_pair_all_assertions(self):
        injector = AssertionInjector(bell_pair())
        injector.assert_entangled([0, 1])
        injector.assert_phase_parity([0, 1])
        assert detection_probability(injector) == pytest.approx(0.0, abs=1e-12)

    def test_uniform_layer(self):
        program = QuantumCircuit(3)
        for q in range(3):
            program.h(q)
        injector = AssertionInjector(program)
        injector.assert_uniform([0, 1, 2])
        assert detection_probability(injector) == pytest.approx(0.0, abs=1e-12)

    def test_classical_init(self):
        program = QuantumCircuit(2)
        program.x(1)
        injector = AssertionInjector(program)
        injector.assert_classical([0, 1], [0, 1])
        assert detection_probability(injector) == pytest.approx(0.0, abs=1e-12)


class TestMissingGateBugs:
    """Bug class 1: a gate was forgotten."""

    def test_missing_cx_in_bell(self):
        program = QuantumCircuit(2)
        program.h(0)  # forgot cx(0, 1)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1])
        # q0q1 in {00, 10}: parity odd on half the mass -> P(detect) = 1/2.
        assert detection_probability(injector) == pytest.approx(0.5)

    def test_missing_h_before_cx(self):
        program = QuantumCircuit(2)
        program.cx(0, 1)  # forgot h(0): state stays |00>
        injector = AssertionInjector(program)
        # Z-parity of |00> is fine — the entanglement assertion is blind...
        injector.assert_entangled([0, 1])
        assert detection_probability(injector) == pytest.approx(0.0, abs=1e-12)
        # ...but the X-parity (full GHZ check) catches it half the time.
        injector2 = AssertionInjector(program)
        injector2.assert_ghz([0, 1])
        assert detection_probability(injector2) == pytest.approx(0.5)

    def test_missing_h_in_uniform_layer(self):
        program = QuantumCircuit(2)
        program.h(0)  # forgot h(1)
        injector = AssertionInjector(program)
        injector.assert_uniform([0, 1])
        # Fig. 7: the classical qubit errs with probability 1/2.
        assert detection_probability(injector) == pytest.approx(0.5)


class TestWrongGateBugs:
    """Bug class 2: the right location, the wrong gate."""

    def test_x_instead_of_h(self):
        program = QuantumCircuit(1)
        program.x(0)  # meant h(0)
        injector = AssertionInjector(program)
        injector.assert_superposition(0)
        assert detection_probability(injector) == pytest.approx(0.5)

    def test_z_instead_of_x_invisible_to_classical_assertion(self):
        """Phase gates on basis states are unobservable — documented."""
        program = QuantumCircuit(1)
        program.z(0)  # meant x(0); |0> is a Z eigenstate
        injector = AssertionInjector(program)
        injector.assert_classical(0, 1)  # expected |1>, got |0>
        assert detection_probability(injector) == pytest.approx(1.0)

    def test_s_instead_of_h(self):
        program = QuantumCircuit(1)
        program.s(0)  # meant h(0): state stays |0>
        injector = AssertionInjector(program)
        injector.assert_superposition(0)
        assert detection_probability(injector) == pytest.approx(0.5)

    def test_rx_angle_typo(self):
        """Off-by-factor-two rotation angle: detection = infidelity."""
        program = QuantumCircuit(1)
        program.ry(math.pi / 4, 0)  # meant ry(pi/2)
        injector = AssertionInjector(program)
        injector.assert_state(0, math.pi / 2, 0.0)
        expected = 1.0 - math.cos(math.pi / 8) ** 2
        assert detection_probability(injector) == pytest.approx(expected, abs=1e-9)


class TestOperandBugs:
    """Bug class 3: right gates, wrong qubits."""

    def test_cx_on_wrong_target(self):
        program = QuantumCircuit(3)
        program.h(0)
        program.cx(0, 2)  # meant cx(0, 1)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1])
        assert detection_probability(injector) == pytest.approx(0.5)

    def test_reversed_cx_in_ghz_chain(self):
        program = QuantumCircuit(3)
        program.h(0)
        program.cx(0, 1)
        program.cx(2, 1)  # meant cx(1, 2)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1, 2], mode="pairwise")
        # Qubit 2 never entangles: pair (1,2) parity is uniform -> 1/2.
        assert detection_probability(injector) == pytest.approx(0.5)


class TestPhaseBugs:
    """Bug class 4: phase errors (invisible in the Z basis)."""

    def test_stray_z_on_bell(self):
        program = bell_pair()
        program.z(1)  # phase error
        z_only = AssertionInjector(program.copy())
        z_only.assert_entangled([0, 1])
        assert detection_probability(z_only) == pytest.approx(0.0, abs=1e-12)
        full = AssertionInjector(program.copy())
        full.assert_ghz([0, 1])
        assert detection_probability(full) == pytest.approx(1.0)

    def test_minus_instead_of_plus(self):
        program = QuantumCircuit(1)
        program.x(0)
        program.h(0)  # |-> where |+> was wanted
        injector = AssertionInjector(program)
        injector.assert_superposition(0, sign="+")
        assert detection_probability(injector) == pytest.approx(1.0)

    def test_stray_t_gate_partial_detection(self):
        program = ghz_state(2)
        program.t(1)
        injector = AssertionInjector(program)
        injector.assert_ghz([0, 1])
        # T rotates the phase by pi/4: X-parity sees sin^2(pi/8) of it.
        expected = math.sin(math.pi / 8) ** 2
        assert detection_probability(injector) == pytest.approx(expected, abs=1e-9)


class TestExtraGateBugs:
    """Bug class 5: an extra, unintended operation."""

    def test_duplicated_h(self):
        program = QuantumCircuit(1)
        program.h(0)
        program.h(0)  # pasted twice: back to |0>
        injector = AssertionInjector(program)
        injector.assert_superposition(0)
        assert detection_probability(injector) == pytest.approx(0.5)

    def test_stray_x_on_ghz(self):
        program = ghz_state(3)
        program.x(2)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1, 2], mode="pairwise")
        assert detection_probability(injector) == pytest.approx(1.0)

    def test_leftover_debug_measurement(self):
        """A measurement someone forgot to delete collapses the state; the
        X-parity check sees the coherence loss half the time."""
        program = bell_pair()
        reg = program.add_clbits(1, name="debug")
        program.measure(0, reg[0])  # leftover debug probe
        injector = AssertionInjector(program)
        injector.assert_ghz([0, 1])
        assert detection_probability(injector) == pytest.approx(0.5)


class TestRuntimeBugCatalogue:
    """Infrastructure bugs the runtime has shipped (and must not re-ship)."""

    def test_execute_reuses_the_shared_pool(self):
        """Regression (PR 1): every execute() call built and tore down its
        own thread pool — pure overhead for single-job callers like
        ``run_table1``.  v2 keys pools by (kind, width) process-wide, so
        repeated calls must reuse one executor and create nothing new."""
        from repro.runtime import execute, get_executor, pool_stats

        program = bell_pair()
        program.measure_all()
        pool = get_executor("thread", 2)
        created_before = pool_stats()["created"]
        for seed in range(3):
            execute(
                program, "statevector", shots=32, seed=seed,
                executor="thread", max_workers=2,
            ).result()
        assert pool_stats()["created"] == created_before
        assert get_executor("thread", 2) is pool

    def test_single_job_callers_pay_no_pool_churn(self):
        """The table1/table2 path — one circuit, default settings — must
        also land on a shared pool: two consecutive calls, zero new pools
        after the first."""
        from repro.runtime import execute, pool_stats

        program = bell_pair()
        program.measure_all()
        execute(program, "statevector", shots=16, seed=1).result()
        created_before = pool_stats()["created"]
        execute(program, "statevector", shots=16, seed=2).result()
        assert pool_stats()["created"] == created_before
