"""Tests for basis decomposition: every rewrite must preserve the unitary."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates, library
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.simulators.unitary import circuits_equivalent
from repro.transpiler.decompose import decompose_to_basis

BASIS = ("u1", "u2", "u3", "cx")
ANGLES = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)


def assert_decomposition_faithful(circuit):
    lowered = decompose_to_basis(circuit, BASIS)
    for inst in lowered.data:
        if inst.operation.is_gate:
            assert inst.name in BASIS, f"{inst.name} not lowered"
    assert circuits_equivalent(circuit, lowered)
    return lowered


class TestFixedGates:
    @pytest.mark.parametrize(
        "name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg"]
    )
    def test_one_qubit_fixed(self, name):
        qc = QuantumCircuit(1)
        getattr(qc, "i" if name == "id" else name)(0)
        assert_decomposition_faithful(qc)

    @pytest.mark.parametrize("name", ["cy", "cz", "ch", "swap", "iswap"])
    def test_two_qubit_fixed(self, name):
        qc = QuantumCircuit(2)
        getattr(qc, name)(0, 1)
        assert_decomposition_faithful(qc)

    def test_ccx(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        lowered = assert_decomposition_faithful(qc)
        assert lowered.count_ops()["cx"] == 6  # the standard network

    def test_cswap(self):
        qc = QuantumCircuit(3)
        qc.cswap(0, 1, 2)
        assert_decomposition_faithful(qc)


class TestParameterisedGates:
    @given(theta=ANGLES)
    @settings(max_examples=25, deadline=None)
    def test_rotations(self, theta):
        for name in ("rx", "ry", "rz", "p"):
            qc = QuantumCircuit(1)
            getattr(qc, name)(theta, 0)
            assert_decomposition_faithful(qc)

    @given(theta=ANGLES)
    @settings(max_examples=25, deadline=None)
    def test_controlled_rotations(self, theta):
        for name in ("cp", "crx", "cry", "crz", "rzz", "rxx"):
            qc = QuantumCircuit(2)
            getattr(qc, name)(theta, 0, 1)
            assert_decomposition_faithful(qc)

    @given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
    @settings(max_examples=25, deadline=None)
    def test_cu3(self, theta, phi, lam):
        qc = QuantumCircuit(2)
        qc.cu3(theta, phi, lam, 0, 1)
        assert_decomposition_faithful(qc)


class TestCircuits:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: library.bell_pair(),
            lambda: library.ghz_state(3),
            lambda: library.qft(3),
            lambda: library.grover(2, [2]),
            lambda: library.w_state(3),
        ],
        ids=["bell", "ghz", "qft", "grover", "w"],
    )
    def test_library_circuits(self, factory):
        assert_decomposition_faithful(factory())

    def test_measures_and_barriers_pass_through(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.barrier()
        qc.measure([0, 1], [0, 1])
        lowered = decompose_to_basis(qc, BASIS)
        names = [inst.name for inst in lowered]
        assert "barrier" in names
        assert names.count("measure") == 2

    def test_conditions_preserved(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0, condition=(0, 1))
        lowered = decompose_to_basis(qc, BASIS)
        assert all(inst.condition == (0, 1) for inst in lowered if inst.operation.is_gate)

    def test_cheapest_u_gate_chosen(self):
        qc = QuantumCircuit(1)
        qc.z(0)  # diagonal -> u1
        lowered = decompose_to_basis(qc, BASIS)
        assert [inst.name for inst in lowered] == ["u1"]
        qc2 = QuantumCircuit(1)
        qc2.h(0)  # theta = pi/2 -> u2
        lowered2 = decompose_to_basis(qc2, BASIS)
        assert [inst.name for inst in lowered2] == ["u2"]


class TestValidation:
    def test_core_basis_required(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(TranspilerError, match="core basis"):
            decompose_to_basis(qc, ("rx", "rz", "cz"))

    def test_arbitrary_two_qubit_unitary_rejected(self):
        import numpy as np

        qc = QuantumCircuit(2)
        qc.unitary(np.eye(4), [0, 1])
        with pytest.raises(TranspilerError, match="not implemented"):
            decompose_to_basis(qc, BASIS)

    def test_one_qubit_unitary_gate_lowered(self):
        qc = QuantumCircuit(1)
        qc.unitary(gates.t_matrix(), [0], label="customT")
        assert_decomposition_faithful(qc)
