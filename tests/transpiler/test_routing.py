"""Tests for SWAP routing."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.devices.topology import CouplingMap
from repro.exceptions import TranspilerError
from repro.simulators.statevector import StatevectorSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.routing import count_added_swaps, route_circuit


def chain(n):
    edges = [(q, q + 1) for q in range(n - 1)] + [(q + 1, q) for q in range(n - 1)]
    return CouplingMap(edges, num_qubits=n)


class TestRouting:
    def test_adjacent_gate_untouched(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        routed, layout = route_circuit(qc, chain(3), Layout.trivial(3, 3))
        assert [inst.name for inst in routed] == ["cx"]
        assert layout == Layout.trivial(3, 3)

    def test_distant_gate_gets_swaps(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        routed, layout = route_circuit(qc, chain(4), Layout.trivial(4, 4))
        names = [inst.name for inst in routed]
        assert names == ["swap", "swap", "cx"]
        # Final CX must act on a coupled pair.
        cx = routed.data[-1]
        assert chain(4).connected(*cx.qubits)
        # Layout must track the moved qubit.
        assert layout != Layout.trivial(4, 4)

    def test_semantics_preserved(self):
        """Routing + tracking must preserve measured statistics."""
        qc = QuantumCircuit(4, 2)
        qc.h(0)
        qc.cx(0, 3)  # distant
        qc.measure(0, 0)
        qc.measure(3, 1)
        routed, layout = route_circuit(qc, chain(4), Layout.trivial(4, 4))
        # Re-point the measurements at wherever the virtual qubits ended up:
        # route_circuit keeps measure instructions on original wires, so to
        # check semantics we run the routed circuit and compare to the ideal
        # Bell statistics on the *physical* bits noted by the layout.
        sim = StatevectorSimulator()
        probs = sim.exact_probabilities(routed)
        assert set(probs) == {"00", "11"}

    def test_swap_count_helper(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        routed, _ = route_circuit(qc, chain(4), Layout.trivial(4, 4))
        assert count_added_swaps(qc, routed) == 2

    def test_oversized_circuit_rejected(self):
        qc = QuantumCircuit(5)
        with pytest.raises(TranspilerError):
            route_circuit(qc, chain(3), Layout.trivial(3, 3))

    def test_three_qubit_gate_rejected(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(TranspilerError, match="decomposition"):
            route_circuit(qc, chain(3), Layout.trivial(3, 3))

    def test_measure_passthrough(self):
        qc = QuantumCircuit(2, 1)
        qc.measure(0, 0)
        routed, _ = route_circuit(qc, chain(2), Layout.trivial(2, 2))
        assert routed.data[0].name == "measure"
