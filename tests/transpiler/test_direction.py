"""Tests for CX direction fixing on directed coupling maps."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.devices.topology import CouplingMap
from repro.exceptions import TranspilerError
from repro.simulators.unitary import circuits_equivalent
from repro.transpiler.direction import fix_cx_directions


def one_way():
    """Only CX(0 -> 1) is native."""
    return CouplingMap([(0, 1)], num_qubits=2)


class TestDirectionFixing:
    def test_native_direction_untouched(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        fixed = fix_cx_directions(qc, one_way())
        assert [inst.name for inst in fixed] == ["cx"]
        assert fixed.data[0].qubits == (0, 1)

    def test_reversed_direction_conjugated(self):
        qc = QuantumCircuit(2)
        qc.cx(1, 0)
        fixed = fix_cx_directions(qc, one_way())
        names = [inst.name for inst in fixed]
        assert names == ["u2", "u2", "cx", "u2", "u2"]
        cx = next(inst for inst in fixed if inst.name == "cx")
        assert cx.qubits == (0, 1)
        assert circuits_equivalent(qc, fixed)

    def test_swap_expanded_with_directions(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        fixed = fix_cx_directions(qc, one_way())
        assert circuits_equivalent(qc, fixed)
        for inst in fixed:
            if inst.name == "cx":
                assert inst.qubits == (0, 1)

    def test_disconnected_pair_rejected(self):
        cmap = CouplingMap([(0, 1)], num_qubits=3)
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        with pytest.raises(TranspilerError, match="route first"):
            fix_cx_directions(qc, cmap)

    def test_non_cx_two_qubit_gate_rejected(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        with pytest.raises(TranspilerError, match="decompose first"):
            fix_cx_directions(qc, one_way())

    def test_one_qubit_gates_and_measures_pass(self):
        qc = QuantumCircuit(2, 1)
        qc.h(0)
        qc.measure(0, 0)
        fixed = fix_cx_directions(qc, one_way())
        assert [inst.name for inst in fixed] == ["h", "measure"]

    def test_ibmqx4_table1_direction(self, ibmqx4_device):
        """The paper's Table 1 CX(q1 -> q2) must be H-conjugated."""
        qc = QuantumCircuit(5)
        qc.cx(1, 2)
        fixed = fix_cx_directions(qc, ibmqx4_device.coupling_map)
        cx = next(inst for inst in fixed if inst.name == "cx")
        assert cx.qubits == (2, 1)
        assert circuits_equivalent(qc, fixed)
