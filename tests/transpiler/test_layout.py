"""Tests for layout selection and application."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.ibmqx4 import ibmqx4
from repro.devices.generic import linear_device
from repro.exceptions import TranspilerError
from repro.transpiler.layout import (
    Layout,
    apply_layout,
    interaction_counts,
    select_layout,
)


class TestLayoutClass:
    def test_bijection_enforced(self):
        with pytest.raises(TranspilerError, match="together"):
            Layout([0, 0], 2)

    def test_range_enforced(self):
        with pytest.raises(TranspilerError, match="exceeds"):
            Layout([0, 5], 3)

    def test_physical_lookup(self):
        layout = Layout([2, 0], 3)
        assert layout.physical(0) == 2
        assert layout.physical(1) == 0
        with pytest.raises(TranspilerError):
            layout.physical(5)

    def test_inverse_mapping(self):
        layout = Layout([2, 0], 3)
        assert layout.physical_to_virtual() == {2: 0, 0: 1}

    def test_swapped(self):
        layout = Layout([0, 1], 3)
        swapped = layout.swapped(1, 2)
        assert swapped.virtual_to_physical == (0, 2)

    def test_swapped_with_unmapped_physical(self):
        layout = Layout([0], 3)
        swapped = layout.swapped(0, 2)
        assert swapped.virtual_to_physical == (2,)

    def test_trivial(self):
        assert Layout.trivial(2, 5).virtual_to_physical == (0, 1)

    def test_equality(self):
        assert Layout([0, 1], 3) == Layout([0, 1], 3)
        assert Layout([0, 1], 3) != Layout([1, 0], 3)


class TestInteractionCounts:
    def test_counts_pairs(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 0)
        qc.cx(1, 2)
        assert interaction_counts(qc) == {(0, 1): 2, (1, 2): 1}


class TestSelectLayout:
    def test_bell_pair_lands_on_an_edge(self):
        device = ibmqx4()
        layout = select_layout(library.bell_pair(), device)
        a, b = layout.virtual_to_physical
        assert device.coupling_map.connected(a, b)

    def test_prefers_low_error_edges(self):
        device = ibmqx4()
        layout = select_layout(library.bell_pair(), device)
        a, b = sorted(layout.virtual_to_physical)
        # (2, 0) has the lowest CX error in the model (0.028).
        assert (a, b) == (0, 2)

    def test_chain_circuit_on_chain_device(self):
        device = linear_device(4)
        layout = select_layout(library.ghz_state(3), device)
        placed = layout.virtual_to_physical
        # Adjacent virtual pairs should be physically adjacent.
        assert device.coupling_map.connected(placed[0], placed[1])
        assert device.coupling_map.connected(placed[1], placed[2])

    def test_too_large_circuit_rejected(self):
        with pytest.raises(TranspilerError, match="needs"):
            select_layout(QuantumCircuit(9), linear_device(4))

    def test_gateless_circuit_still_mapped(self):
        device = linear_device(3)
        layout = select_layout(QuantumCircuit(2), device)
        assert len(set(layout.virtual_to_physical)) == 2


class TestApplyLayout:
    def test_remaps_instructions(self):
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        laid = apply_layout(qc, Layout([3, 1], 5))
        assert laid.num_qubits == 5
        assert laid.data[0].qubits == (3, 1)
        assert laid.data[1].qubits == (3,)
        assert laid.data[1].clbits == (0,)
