"""Tests for peephole optimisation: semantics must never change."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.simulators.unitary import circuits_equivalent
from repro.transpiler.optimize import cancel_adjacent_cx, merge_single_qubit_runs


class TestMergeSingleQubitRuns:
    def test_hh_cancels(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.h(0)
        merged = merge_single_qubit_runs(qc)
        assert len(merged) == 0

    def test_run_becomes_one_gate(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.t(0)
        qc.s(0)
        qc.h(0)
        merged = merge_single_qubit_runs(qc)
        assert len(merged) == 1
        assert circuits_equivalent(qc, merged)

    def test_runs_bounded_by_two_qubit_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(0)
        merged = merge_single_qubit_runs(qc)
        names = [inst.name for inst in merged]
        assert names.count("cx") == 1
        assert circuits_equivalent(qc, merged)
        # The two H's must NOT merge across the CX.
        assert len(merged) == 3

    def test_barrier_blocks_merge(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.barrier(0)
        qc.h(0)
        merged = merge_single_qubit_runs(qc)
        gate_names = [inst.name for inst in merged if inst.name != "barrier"]
        assert len(gate_names) == 2

    def test_conditioned_gates_not_merged(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.x(0, condition=(0, 1))
        qc.h(0)
        merged = merge_single_qubit_runs(qc)
        conditions = [inst.condition for inst in merged]
        assert (0, 1) in conditions

    def test_diagonal_run_becomes_u1(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        qc.s(0)
        merged = merge_single_qubit_runs(qc)
        assert [inst.name for inst in merged] == ["u1"]

    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_preserved(self, seed):
        qc = library.random_circuit(3, 8, seed=seed)
        merged = merge_single_qubit_runs(qc)
        assert circuits_equivalent(qc, merged)
        assert merged.size() <= qc.size()


class TestCancelAdjacentCX:
    def test_back_to_back_pair_cancels(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 0

    def test_intervening_gate_blocks(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.h(1)
        qc.cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 3

    def test_gate_on_other_wire_is_transparent(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.h(2)
        qc.cx(0, 1)
        cancelled = cancel_adjacent_cx(qc)
        assert [inst.name for inst in cancelled] == ["h"]

    def test_reversed_pair_does_not_cancel(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        assert len(cancel_adjacent_cx(qc)) == 2

    def test_cascading_cancellation(self):
        qc = QuantumCircuit(2)
        for _ in range(4):
            qc.cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 0

    def test_odd_count_leaves_one(self):
        qc = QuantumCircuit(2)
        for _ in range(3):
            qc.cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 1

    def test_measurement_blocks_cancellation(self):
        """The assertion-circuit guarantee: the ancilla measurement sits
        between parity CNOTs on the same wires and must block cancellation."""
        qc = QuantumCircuit(2, 1)
        qc.cx(0, 1)
        qc.measure(1, 0)
        qc.cx(0, 1)
        assert len(cancel_adjacent_cx(qc)) == 3

    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_preserved(self, seed):
        qc = library.random_circuit(3, 10, seed=seed, clifford_only=True)
        cancelled = cancel_adjacent_cx(qc)
        assert circuits_equivalent(qc, cancelled)
