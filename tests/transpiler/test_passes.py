"""Tests for the full transpilation pipeline."""

import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.devices.generic import linear_device
from repro.devices.ibmqx4 import ibmqx4
from repro.exceptions import TranspilerError
from repro.simulators.statevector import StatevectorSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.passes import (
    PassManager,
    TranspilerPass,
    device_pass_manager,
    transpile_for_device,
)


def native_only(circuit, device):
    """Assert the circuit uses only native gates on native directed edges."""
    for inst in circuit.data:
        if not inst.operation.is_gate:
            continue
        assert inst.name in device.basis_gates
        if inst.name == "cx":
            assert device.coupling_map.supports(*inst.qubits)


class TestPassManager:
    def test_runs_in_order_with_history(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        manager = PassManager(
            [
                TranspilerPass("a", lambda c: c),
                TranspilerPass("b", lambda c: c),
            ]
        )
        manager.run(qc)
        assert [name for name, _, _ in manager.history] == ["a", "b"]

    def test_repr(self):
        manager = PassManager([TranspilerPass("x", lambda c: c)])
        assert "x" in repr(manager)


class TestFullPipeline:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: library.bell_pair(),
            lambda: library.ghz_state(4),
            lambda: library.qft(3),
            lambda: library.w_state(3),
        ],
        ids=["bell", "ghz4", "qft3", "w3"],
    )
    def test_ibmqx4_lowering_is_native(self, factory, ibmqx4_device):
        lowered = transpile_for_device(factory(), ibmqx4_device)
        native_only(lowered, ibmqx4_device)

    def test_measured_counts_preserved(self, ibmqx4_device):
        """Ideal simulation of the transpiled circuit must reproduce the
        original measurement distribution (physical bit positions differ,
        but clbits don't move)."""
        qc = library.ghz_state(3)
        qc.measure_all()
        lowered = transpile_for_device(qc, ibmqx4_device)
        sim = StatevectorSimulator()
        original = sim.exact_probabilities(qc)
        transpiled = sim.exact_probabilities(lowered)
        assert set(original) == set(transpiled)
        for key in original:
            assert abs(original[key] - transpiled[key]) < 1e-9

    def test_pinned_layout_respected(self, ibmqx4_device):
        qc = library.bell_pair()
        qc.measure_all()
        layout = Layout([1, 2], 5)
        lowered = transpile_for_device(qc, ibmqx4_device, layout=layout)
        touched = set()
        for inst in lowered.data:
            if inst.operation.is_gate or inst.name == "measure":
                touched.update(inst.qubits)
        assert touched <= {1, 2}

    def test_too_large_circuit_rejected(self, ibmqx4_device):
        with pytest.raises(TranspilerError):
            transpile_for_device(QuantumCircuit(6), ibmqx4_device)

    def test_optimization_reduces_or_keeps_size(self, ibmqx4_device):
        qc = library.qft(3)
        unoptimized = transpile_for_device(qc, ibmqx4_device, optimize=False)
        optimized = transpile_for_device(qc, ibmqx4_device, optimize=True)
        assert optimized.size() <= unoptimized.size()

    def test_routing_on_chain_device(self):
        device = linear_device(4)
        qc = QuantumCircuit(4, 2)
        qc.h(0)
        qc.cx(0, 3)  # forces routing on a chain
        qc.measure(0, 0)
        qc.measure(3, 1)
        lowered = transpile_for_device(qc, device)
        native_only(lowered, device)
        probs = StatevectorSimulator().exact_probabilities(lowered)
        assert set(probs) == {"00", "11"}

    def test_conditional_circuit_transpiles(self, ibmqx4_device):
        prep = QuantumCircuit(1)
        prep.ry(0.8, 0)
        circuit = library.teleportation(state_prep=prep)
        reg = circuit.add_clbits(1, name="bob")
        circuit.measure(2, reg[0])
        lowered = transpile_for_device(circuit, ibmqx4_device)
        native_only(lowered, ibmqx4_device)
        sim = StatevectorSimulator()
        import math

        probs = lowered and sim.exact_probabilities(lowered)
        p_one = sum(p for key, p in probs.items() if key[2] == "1")
        assert abs(p_one - math.sin(0.4) ** 2) < 1e-9

    def test_device_pass_manager_history(self, ibmqx4_device):
        manager = device_pass_manager(ibmqx4_device)
        manager.run(library.bell_pair())
        names = [name for name, _, _ in manager.history]
        assert names[0] == "decompose"
        assert "direction" in names
