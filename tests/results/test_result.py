"""Unit tests for the Result container."""

import numpy as np

from repro.results.counts import Counts
from repro.results.result import Result


class TestResult:
    def test_defaults(self):
        result = Result()
        assert result.counts == {}
        assert result.shots == 0
        assert result.statevector is None
        assert result.probabilities is None
        assert result.metadata == {}

    def test_fields_stored(self):
        counts = Counts({"0": 5})
        result = Result(
            counts=counts,
            shots=5,
            statevector=np.array([1, 0], dtype=complex),
            probabilities={"0": 1.0},
            metadata={"engine": "sv"},
        )
        assert result.counts is counts
        assert result.shots == 5
        assert result.metadata["engine"] == "sv"

    def test_metadata_copied(self):
        meta = {"a": 1}
        result = Result(metadata=meta)
        meta["a"] = 2
        assert result.metadata["a"] == 1

    def test_repr_mentions_counts(self):
        result = Result(counts=Counts({"0": 1}), shots=1)
        assert "counts" in repr(result)

    def test_repr_flags_optionals(self):
        result = Result(
            statevector=np.array([1, 0], dtype=complex),
            probabilities={"0": 1.0},
        )
        text = repr(result)
        assert "statevector=<set>" in text
        assert "probabilities=<set>" in text
