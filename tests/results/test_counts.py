"""Unit tests for the Counts histogram."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.results.counts import Counts, counts_from_probabilities


class TestConstruction:
    def test_basic(self):
        counts = Counts({"00": 3, "11": 7})
        assert counts.shots == 10
        assert counts.num_bits == 2

    def test_empty(self):
        counts = Counts()
        assert counts.shots == 0
        assert counts.num_bits == 0

    def test_zero_counts_dropped(self):
        counts = Counts({"0": 0, "1": 5})
        assert "0" not in counts

    def test_invalid_key_rejected(self):
        with pytest.raises(AnalysisError, match="invalid bitstring"):
            Counts({"0a": 1})

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(AnalysisError, match="widths"):
            Counts({"0": 1, "00": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(AnalysisError, match="negative"):
            Counts({"0": -1})

    def test_repr_sorted(self):
        assert repr(Counts({"1": 2, "0": 1})) == "Counts({'0': 1, '1': 2})"


class TestProbabilities:
    def test_normalisation(self):
        probs = Counts({"0": 25, "1": 75}).probabilities()
        assert probs == {"0": 0.25, "1": 0.75}

    def test_empty_gives_empty(self):
        assert Counts().probabilities() == {}

    def test_probability_of_missing_key(self):
        assert Counts({"0": 10}).probability_of("1") == 0.0

    def test_most_frequent(self):
        assert Counts({"00": 5, "01": 9, "10": 9}).most_frequent() == "01"

    def test_most_frequent_empty_raises(self):
        with pytest.raises(AnalysisError):
            Counts().most_frequent()


class TestMarginalisation:
    def test_marginal_keeps_requested_order(self):
        counts = Counts({"011": 4})
        assert counts.marginal([2, 0]) == {"10": 4}

    def test_marginal_aggregates(self):
        counts = Counts({"00": 2, "01": 3, "10": 4, "11": 1})
        assert counts.marginal([0]) == {"0": 5, "1": 5}

    def test_marginal_range_checked(self):
        with pytest.raises(AnalysisError):
            Counts({"0": 1}).marginal([2])

    def test_without_bits(self):
        counts = Counts({"010": 7})
        assert counts.without_bits([1]) == {"00": 7}


class TestPostselection:
    def test_basic_postselect(self):
        counts = Counts({"00": 6, "01": 2, "10": 1, "11": 1})
        assert counts.postselect({0: 0}) == {"00": 6, "01": 2}

    def test_multi_condition(self):
        counts = Counts({"000": 1, "010": 2, "011": 3})
        assert counts.postselect({0: 0, 1: 1}) == {"010": 2, "011": 3}

    def test_value_validated(self):
        with pytest.raises(AnalysisError):
            Counts({"0": 1}).postselect({0: 2})

    def test_position_validated(self):
        with pytest.raises(AnalysisError):
            Counts({"0": 1}).postselect({5: 0})

    def test_empty_selection(self):
        assert Counts({"1": 4}).postselect({0: 0}) == {}


class TestMerging:
    def test_merged_with(self):
        merged = Counts({"0": 1}).merged_with(Counts({"0": 2, "1": 3}))
        assert merged == {"0": 3, "1": 3}

    def test_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            Counts({"0": 1}).merged_with(Counts({"00": 1}))

    def test_merge_with_empty(self):
        assert Counts({"0": 1}).merged_with(Counts()) == {"0": 1}


class TestDistances:
    def test_identical_distance_zero(self):
        counts = Counts({"0": 5, "1": 5})
        assert counts.total_variation_distance(counts) == 0.0
        assert counts.hellinger_distance(counts) == 0.0

    def test_disjoint_distance_one(self):
        a = Counts({"0": 10})
        b = Counts({"1": 10})
        assert a.total_variation_distance(b) == pytest.approx(1.0)
        assert a.hellinger_distance(b) == pytest.approx(1.0)

    def test_tvd_half(self):
        a = Counts({"0": 10})
        b = Counts({"0": 5, "1": 5})
        assert a.total_variation_distance(b) == pytest.approx(0.5)


class TestCountsFromProbabilities:
    def test_expected_counts_deterministic(self):
        counts = counts_from_probabilities({"0": 0.3, "1": 0.7}, 10)
        assert counts == {"0": 3, "1": 7}

    def test_largest_remainder_preserves_total(self):
        thirds = {"00": 1 / 3, "01": 1 / 3, "10": 1 / 3}
        counts = counts_from_probabilities(thirds, 100)
        assert counts.shots == 100

    def test_sampled_counts(self):
        rng = np.random.default_rng(0)
        counts = counts_from_probabilities({"0": 0.5, "1": 0.5}, 10000, rng=rng)
        assert counts.shots == 10000
        assert abs(counts["0"] - 5000) < 300

    def test_unnormalised_rejected(self):
        with pytest.raises(AnalysisError, match="sum"):
            counts_from_probabilities({"0": 0.6, "1": 0.6}, 10)

    def test_negative_shots_rejected(self):
        with pytest.raises(AnalysisError):
            counts_from_probabilities({"0": 1.0}, -1)

    def test_empty_distribution(self):
        assert counts_from_probabilities({}, 10) == {}
