"""Tests for the A7 stacked-assertion amplification study."""

import pytest

from repro.experiments.amplification import run_amplification


class TestAmplification:
    @pytest.fixture(scope="class")
    def result(self):
        return run_amplification(max_k=5)

    def test_one_shot_saturates_at_half(self, result):
        """The auto-correction property (paper §3.3): passing checks repair
        the qubit into exactly |+>, blinding all later checks."""
        for k in range(1, 6):
            assert result.detection(k, "one-shot") == pytest.approx(0.5, abs=1e-9)

    def test_recurring_bug_amplifies_ideally(self, result):
        for k in range(1, 6):
            assert result.detection(k, "recurring") == pytest.approx(
                1.0 - 2.0 ** (-k), abs=1e-9
            )

    def test_recurring_dominates_one_shot_beyond_k1(self, result):
        for k in range(2, 6):
            assert result.detection(k, "recurring") > result.detection(
                k, "one-shot"
            )

    def test_k1_scenarios_identical(self, result):
        assert result.detection(1, "one-shot") == pytest.approx(
            result.detection(1, "recurring")
        )

    def test_unknown_key_raises(self, result):
        with pytest.raises(KeyError):
            result.detection(99, "one-shot")

    def test_summary_renders(self, result):
        text = result.summary()
        assert "auto-" in text
        assert "recurring" in text
