"""Tests for the A5b phase-error detection ablation and the CLI runner."""

import pytest

from repro.experiments.ablation_phase import run_phase_ablation


class TestPhaseAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_phase_ablation(noise_levels=(0.0, 0.1))

    def test_z_pairs_blind_to_phase_noise(self, result):
        assert result.detection(0.1, "z-pairs") == pytest.approx(0.0, abs=1e-9)

    def test_x_parity_detects(self, result):
        assert result.detection(0.1, "x-parity") > 0.1

    def test_full_check_dominates(self, result):
        assert result.detection(0.1, "full") >= result.detection(0.1, "x-parity")

    def test_no_false_positives(self, result):
        for detector in ("z-pairs", "x-parity", "full"):
            assert result.detection(0.0, detector) == pytest.approx(0.0, abs=1e-9)

    def test_unknown_configuration_raises(self, result):
        with pytest.raises(KeyError):
            result.detection(0.99, "full")

    def test_summary_renders(self, result):
        assert "blind" in result.summary()


class TestCli:
    def test_list_option(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig7" in out

    def test_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out

    def test_unknown_experiment_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonexistent"])
