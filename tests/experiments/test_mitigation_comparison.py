"""Tests for the A6 filtering-vs-mitigation comparison."""

import pytest

from repro.experiments.mitigation_comparison import run_mitigation_comparison


class TestMitigationComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mitigation_comparison(shots=8192, seed=2020)

    def test_all_rows_present(self, result):
        scenarios = {s for s, _t, _e in result.rows}
        techniques = {t for _s, t, _e in result.rows}
        assert scenarios == {"full noise", "gate noise only"}
        assert techniques == {"raw", "mitigated", "filtered", "both"}

    def test_every_technique_beats_raw_under_full_noise(self, result):
        raw = result.error("full noise", "raw")
        for technique in ("mitigated", "filtered", "both"):
            assert result.error("full noise", technique) < raw

    def test_combination_is_best(self, result):
        both = result.error("full noise", "both")
        assert both <= result.error("full noise", "mitigated")
        assert both <= result.error("full noise", "filtered")

    def test_mitigation_inert_without_readout_noise(self, result):
        raw = result.error("gate noise only", "raw")
        mitigated = result.error("gate noise only", "mitigated")
        assert mitigated == pytest.approx(raw, rel=0.25)

    def test_filtering_still_works_without_readout_noise(self, result):
        raw = result.error("gate noise only", "raw")
        filtered = result.error("gate noise only", "filtered")
        assert filtered < raw * 0.6

    def test_unknown_configuration_raises(self, result):
        with pytest.raises(KeyError):
            result.error("full noise", "magic")

    def test_summary_renders(self, result):
        text = result.summary()
        assert "mitigation" in text
        assert "filtering" in text
