"""Tests for the A1-A4 ablation experiments."""

import pytest

from repro.experiments.ablation_parity import run_parity_ablation
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.scaling import run_scaling
from repro.experiments.sweeps import run_noise_sweep


class TestParityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_parity_ablation(sizes=(2, 3, 4))

    def test_even_variant_leaves_ancilla_clean(self, result):
        for n, variant, entropy, fidelity in result.rows:
            if variant == "even":
                assert entropy == pytest.approx(0.0, abs=1e-9)
                assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_odd_variant_entangles_ancilla(self, result):
        for n, variant, entropy, fidelity in result.rows:
            if variant == "odd":
                assert entropy == pytest.approx(1.0, abs=1e-9)
                # Collapsed to a classical mixture: fidelity drops to ~0.5.
                assert fidelity == pytest.approx(0.5, abs=1e-6)

    def test_summary_renders(self, result):
        assert "Fig. 4" in result.summary()


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling(sizes=(2, 8, 32), shots=64, seed=5)

    def test_assertions_always_pass_ideally(self, result):
        for _n, _mode, _anc, _cx, pass_rate, _sec in result.rows:
            assert pass_rate == pytest.approx(1.0)

    def test_pairwise_overhead_linear(self, result):
        pairwise = {n: anc for n, mode, anc, _cx, _p, _s in result.rows
                    if mode == "pairwise"}
        assert pairwise == {2: 1, 8: 7, 32: 31}

    def test_single_overhead_constant(self, result):
        single = {n: anc for n, mode, anc, _cx, _p, _s in result.rows
                  if mode == "single"}
        assert single == {2: 1, 8: 1, 32: 1}

    def test_summary_renders(self, result):
        assert "scaling" in result.summary()


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_baseline_comparison(shots=1024, seed=17)

    def test_both_detect_real_bugs(self, result):
        for scenario in ("bell missing CX", "superposition X-for-H"):
            assert result.detection(scenario, "dynamic")
            assert result.detection(scenario, "statistical")

    def test_neither_flags_correct_programs(self, result):
        for scenario in ("bell correct", "superposition correct"):
            assert not result.detection(scenario, "dynamic")
            assert not result.detection(scenario, "statistical")

    def test_dynamic_keeps_program_running(self, result):
        for row in result.rows:
            _scenario, approach, _det, _execs, continues = row
            if approach == "dynamic":
                assert continues
            else:
                assert not continues

    def test_summary_renders(self, result):
        assert "statistical" in result.summary()


class TestNoiseSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_noise_sweep(scales=(0.5, 1.0, 2.0), shots=4096, seed=2020)

    def test_raw_error_monotone_in_scale(self, result):
        for experiment in ("table1", "table2"):
            series = result.series(experiment)
            raws = [raw for _scale, raw, _filtered in series]
            assert raws == sorted(raws)

    def test_filtering_helps_at_every_scale(self, result):
        for _name, _scale, raw, filtered, reduction in result.rows:
            assert filtered < raw
            assert reduction > 0.0

    def test_summary_renders(self, result):
        assert "noise sweep" in result.summary()
