"""Tests for the E1/E2 figure reproductions (exact, no sampling)."""

import math

import pytest

from repro.experiments.fig6 import FIG6_INPUTS, run_fig6
from repro.experiments.fig7 import FIG7_INPUTS, run_fig7


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6()

    def test_covers_all_inputs(self, result):
        assert len(result.rows) == len(FIG6_INPUTS)

    def test_plus_input_matches_paper(self, result):
        _label, p_err, fidelity = result.row("|+>")
        assert p_err == pytest.approx(0.5)
        assert fidelity == pytest.approx(1.0)

    def test_zero_never_errs(self, result):
        _label, p_err, fidelity = result.row("|0>")
        assert p_err == pytest.approx(0.0, abs=1e-12)
        assert fidelity == pytest.approx(1.0)

    def test_one_always_errs(self, result):
        _label, p_err, fidelity = result.row("|1>")
        assert p_err == pytest.approx(1.0)
        assert math.isnan(fidelity)

    def test_partial_superposition_error_is_b_squared(self, result):
        _label, p_err, fidelity = result.row("0.8|0>")
        assert p_err == pytest.approx(1 - 0.64, abs=1e-9)
        assert fidelity == pytest.approx(1.0)

    def test_projection_always_exact_when_passing(self, result):
        for _label, p_err, fidelity in result.rows:
            if p_err < 1.0:
                assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_summary_renders(self, result):
        text = result.summary()
        assert "Fig. 6" in text
        assert "|+>" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7()

    def test_covers_all_inputs(self, result):
        assert len(result.rows) == len(FIG7_INPUTS)

    def test_classical_inputs_err_half_the_time(self, result):
        for label in ("|0>", "|1>"):
            _l, measured, predicted, weight = result.row(label)
            assert measured == pytest.approx(0.5)
            assert predicted == pytest.approx(0.5)
            assert weight == pytest.approx(0.5)

    def test_plus_never_errs(self, result):
        _l, measured, _predicted, weight = result.row("|+>")
        assert measured == pytest.approx(0.0, abs=1e-12)
        assert weight == pytest.approx(0.5)

    def test_minus_always_errs(self, result):
        _l, measured, predicted, _weight = result.row("|->")
        assert measured == pytest.approx(1.0)
        assert predicted == pytest.approx(1.0)

    def test_formula_matches_measurement_everywhere(self, result):
        for _label, measured, predicted, _w in result.rows:
            assert measured == pytest.approx(predicted, abs=1e-9)

    def test_forced_superposition_on_pass(self, result):
        for label, measured, _predicted, weight in result.rows:
            if measured < 1.0 - 1e-9:
                assert weight == pytest.approx(0.5, abs=1e-9)

    def test_summary_renders(self, result):
        assert "Fig. 7" in result.summary()
