"""Tests for the E3/E4/E5 hardware-model reproductions.

We cannot pin absolute percentages (the noise model is representative, not
the authors' calibration snapshot), so these tests assert the paper's
*shape*: the outcome ordering, the error-rate regimes, and most importantly
that assertion-based post-selection reduces the error rate by a double-digit
relative margin.
"""

import pytest

from repro.experiments.sec43 import run_sec43
from repro.experiments.table1 import PAPER_TABLE1, build_table1_circuit, run_table1
from repro.experiments.table2 import PAPER_TABLE2, build_table2_circuit, run_table2


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(shots=8192, seed=2020)

    def test_distribution_covers_paper_rows(self, result):
        assert set(result.distribution) == set(PAPER_TABLE1)
        assert sum(result.distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_dominant_outcome_is_00(self, result):
        assert result.distribution["00"] > 0.85

    def test_error_rates_in_hardware_regime(self, result):
        assert 0.01 < result.raw_error < 0.10
        assert result.filtered_error < result.raw_error

    def test_reduction_shape_matches_paper(self, result):
        """Paper: 28.5% relative reduction; we require a double-digit one."""
        assert result.reduction > 0.10

    def test_instrumented_circuit_structure(self):
        circuit, injector = build_table1_circuit()
        assert circuit.num_qubits == 2
        assert circuit.num_clbits == 2
        assert len(injector.records) == 1

    def test_summary_renders(self, result):
        text = result.summary()
        assert "Table 1" in text
        assert "28.5%" in text

    def test_deterministic_with_seed(self):
        a = run_table1(shots=1024, seed=1)
        b = run_table1(shots=1024, seed=1)
        assert a.distribution == b.distribution


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(shots=8192, seed=2020)

    def test_distribution_covers_paper_rows(self, result):
        assert set(result.distribution) == set(PAPER_TABLE2)
        assert sum(result.distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_bell_outcomes_dominate(self, result):
        """The two correct rows (000, 011) carry most of the mass."""
        top = result.distribution["000"] + result.distribution["011"]
        assert top > 0.6
        for key in PAPER_TABLE2:
            if key not in ("000", "011"):
                assert result.distribution[key] < result.distribution["000"]

    def test_error_rates_in_hardware_regime(self, result):
        assert 0.05 < result.raw_error < 0.30
        assert result.filtered_error < result.raw_error

    def test_improvement_shape_matches_paper(self, result):
        """Paper: 31.5% relative improvement; require double-digit."""
        assert result.improvement > 0.10

    def test_instrumented_circuit_structure(self):
        circuit, injector = build_table2_circuit()
        assert circuit.num_qubits == 3  # Bell pair + parity ancilla
        assert circuit.num_clbits == 3

    def test_summary_renders(self, result):
        assert "Table 2" in result.summary()


class TestSec43:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sec43(shots=8192, seed=2020)

    def test_error_rate_in_paper_band(self, result):
        """Paper reports 15.6%; calibration-dependent, so accept 2-25%."""
        assert 0.02 < result.assertion_error_rate < 0.25

    def test_filtering_improves_fidelity(self, result):
        assert result.fidelity_filtered > result.fidelity_unfiltered
        assert result.fidelity_unfiltered > 0.85

    def test_summary_renders(self, result):
        assert "15.6%" in result.summary()


class TestNoiseScaling:
    def test_scaled_noise_scales_raw_error(self):
        low = run_table1(shots=4096, seed=3, noise_scale=0.5)
        high = run_table1(shots=4096, seed=3, noise_scale=2.0)
        assert low.raw_error < high.raw_error

    def test_zero_noise_is_error_free(self):
        ideal = run_table1(shots=2048, seed=4, noise_scale=0.0)
        assert ideal.raw_error == pytest.approx(0.0, abs=1e-9)
