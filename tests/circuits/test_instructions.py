"""Tests for the Instruction container."""

import pytest

from repro.circuits.gates import Measure, get_gate
from repro.circuits.instructions import Instruction
from repro.exceptions import CircuitError


class TestInstructionValidation:
    def test_arity_mismatch_raises(self):
        with pytest.raises(CircuitError, match="expects 2 qubit"):
            Instruction(get_gate("cx"), (0,))

    def test_clbit_mismatch_raises(self):
        with pytest.raises(CircuitError, match="expects 1 clbit"):
            Instruction(Measure(), (0,), ())

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Instruction(get_gate("cx"), (1, 1))

    def test_condition_value_validated(self):
        with pytest.raises(CircuitError, match="0 or 1"):
            Instruction(get_gate("x"), (0,), condition=(0, 2))

    def test_valid_measure(self):
        inst = Instruction(Measure(), (3,), (1,))
        assert inst.qubits == (3,)
        assert inst.clbits == (1,)
        assert inst.name == "measure"


class TestRemap:
    def test_remap_translates_all_bits(self):
        inst = Instruction(get_gate("cx"), (0, 1), condition=(0, 1))
        remapped = inst.remap([5, 7], [3])
        assert remapped.qubits == (5, 7)
        assert remapped.condition == (3, 1)

    def test_remap_measure_clbits(self):
        inst = Instruction(Measure(), (0,), (0,))
        remapped = inst.remap([2], [4])
        assert remapped.qubits == (2,)
        assert remapped.clbits == (4,)


class TestEqualityAndRepr:
    def test_equal_instructions(self):
        a = Instruction(get_gate("h"), (0,))
        b = Instruction(get_gate("h"), (0,))
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_on_qubits(self):
        assert Instruction(get_gate("h"), (0,)) != Instruction(get_gate("h"), (1,))

    def test_repr_contains_name_and_qubits(self):
        inst = Instruction(get_gate("cx"), (0, 1), condition=(2, 1))
        text = repr(inst)
        assert "cx" in text
        assert "if c[2]==1" in text
