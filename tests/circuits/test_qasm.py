"""Tests for OpenQASM 2.0 export/import round-trips."""

import math

import numpy as np
import pytest

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm
from repro.circuits.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import QasmError
from repro.simulators.unitary import circuits_equivalent


class TestExport:
    def test_header_and_registers(self):
        qc = QuantumCircuit(QuantumRegister(2, "qr"), ClassicalRegister(1, "cr"))
        text = circuit_to_qasm(qc)
        assert "OPENQASM 2.0;" in text
        assert "qreg qr[2];" in text
        assert "creg cr[1];" in text

    def test_gate_statements(self):
        qc = QuantumCircuit(2, 1)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(1, 0)
        text = circuit_to_qasm(qc)
        assert "h q[0];" in text
        assert "cx q[0], q[1];" in text
        assert "measure q[1] -> c[0];" in text

    def test_symbolic_pi_angles(self):
        qc = QuantumCircuit(1)
        qc.rz(math.pi / 2, 0)
        qc.rz(-math.pi, 0)
        text = circuit_to_qasm(qc)
        assert "rz(pi/2)" in text
        assert "rz(-pi)" in text

    def test_unitary_gate_rejected(self):
        qc = QuantumCircuit(1)
        qc.unitary(np.eye(2), [0])
        with pytest.raises(QasmError, match="arbitrary unitary"):
            circuit_to_qasm(qc)

    def test_condition_requires_single_bit_register(self):
        qc = QuantumCircuit(1, 2)
        qc.x(0, condition=(0, 1))
        with pytest.raises(QasmError, match="1-bit"):
            circuit_to_qasm(qc)

    def test_condition_on_single_bit_register(self):
        qc = QuantumCircuit(QuantumRegister(1, "q"), ClassicalRegister(1, "flag"))
        qc.x(0, condition=(0, 1))
        text = circuit_to_qasm(qc)
        assert "if(flag==1) x q[0];" in text


class TestImport:
    def test_parse_simple_program(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        """
        qc = circuit_from_qasm(text)
        assert qc.num_qubits == 2
        assert [inst.name for inst in qc] == ["h", "cx", "measure", "measure"]

    def test_parse_angles(self):
        qc = circuit_from_qasm(
            'OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; rx(0.5) q[0];'
        )
        assert abs(qc.data[0].operation.params[0] - math.pi / 4) < 1e-12
        assert abs(qc.data[1].operation.params[0] - 0.5) < 1e-12

    def test_comments_stripped(self):
        qc = circuit_from_qasm(
            "OPENQASM 2.0; // hello\nqreg q[1]; // comment\nx q[0];"
        )
        assert [inst.name for inst in qc] == ["x"]

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError, match="unknown quantum register"):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; x bad[0];")

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError, match="unsupported gate"):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; fancy q[0];")

    def test_malformed_angle_raises(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; rz(import os) q[0];")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: library.bell_pair(),
            lambda: library.ghz_state(3),
            lambda: library.qft(3),
            lambda: library.grover(2, [3]),
            lambda: library.w_state(3),
        ],
        ids=["bell", "ghz", "qft", "grover", "w"],
    )
    def test_unitary_circuits_roundtrip_equivalent(self, factory):
        original = factory()
        restored = circuit_from_qasm(circuit_to_qasm(original))
        assert circuits_equivalent(original, restored)

    def test_measured_circuit_roundtrip(self):
        qc = library.bell_pair()
        qc.measure_all()
        restored = circuit_from_qasm(circuit_to_qasm(qc))
        assert restored.count_ops()["measure"] == 2

    def test_barrier_and_reset_roundtrip(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.reset(0)
        restored = circuit_from_qasm(circuit_to_qasm(qc))
        assert [inst.name for inst in restored] == ["h", "barrier", "reset"]

    def test_instrumented_assertion_circuit_roundtrip(self):
        from repro.core.injector import AssertionInjector

        injector = AssertionInjector(library.bell_pair())
        injector.assert_entangled([0, 1])
        injector.measure_program()
        text = circuit_to_qasm(injector.circuit)
        restored = circuit_from_qasm(text)
        assert restored.num_qubits == injector.circuit.num_qubits
        assert restored.count_ops() == injector.circuit.count_ops()
