"""Tests for the standard circuit library, verified on the statevector engine."""

import math

import numpy as np
import pytest

from repro.circuits import library
from repro.exceptions import CircuitError
from repro.simulators.statevector import Statevector, StatevectorSimulator

SIM = StatevectorSimulator()


def final_state(circuit):
    return SIM.final_statevector(circuit)


class TestBellPairs:
    def test_phi_plus(self):
        state = final_state(library.bell_pair("phi+"))
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert state.equiv(Statevector(expected))

    def test_phi_minus(self):
        state = final_state(library.bell_pair("phi-"))
        expected = np.zeros(4, dtype=complex)
        expected[0], expected[3] = 1 / math.sqrt(2), -1 / math.sqrt(2)
        assert state.equiv(Statevector(expected))

    def test_psi_plus(self):
        state = final_state(library.bell_pair("psi+"))
        expected = np.zeros(4, dtype=complex)
        expected[1] = expected[2] = 1 / math.sqrt(2)
        assert state.equiv(Statevector(expected))

    def test_psi_minus(self):
        state = final_state(library.bell_pair("psi-"))
        probs = state.probabilities()
        assert set(probs) == {"01", "10"}

    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            library.bell_pair("nope")


class TestGHZ:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_ghz_support(self, n):
        probs = final_state(library.ghz_state(n)).probabilities()
        assert set(probs) == {"0" * n, "1" * n}
        for p in probs.values():
            assert abs(p - 0.5) < 1e-12

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            library.ghz_state(1)


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_w_state_support_and_weights(self, n):
        probs = final_state(library.w_state(n)).probabilities()
        expected_keys = {
            "".join("1" if i == k else "0" for i in range(n)) for k in range(n)
        }
        assert set(probs) == expected_keys
        for p in probs.values():
            assert abs(p - 1.0 / n) < 1e-9


class TestUniformSuperposition:
    def test_all_outcomes_equal(self):
        probs = final_state(library.uniform_superposition(3)).probabilities()
        assert len(probs) == 8
        for p in probs.values():
            assert abs(p - 0.125) < 1e-12


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_qft_matches_dft_matrix(self, n):
        from repro.simulators.unitary import circuit_unitary

        dim = 2 ** n
        qft_unitary = circuit_unitary(library.qft(n))
        omega = np.exp(2j * math.pi / dim)
        dft = np.array(
            [[omega ** (row * col) for col in range(dim)] for row in range(dim)]
        ) / math.sqrt(dim)
        np.testing.assert_allclose(qft_unitary, dft, atol=1e-10)

    def test_inverse_qft_cancels(self):
        from repro.simulators.unitary import circuit_unitary

        circuit = library.qft(3)
        circuit.compose(library.inverse_qft(3))
        np.testing.assert_allclose(circuit_unitary(circuit), np.eye(8), atol=1e-10)


class TestTeleportation:
    @pytest.mark.parametrize("theta", [0.0, 0.7, math.pi / 2, 2.2])
    def test_teleports_arbitrary_state(self, theta):
        from repro.circuits.circuit import QuantumCircuit

        prep = QuantumCircuit(1)
        if theta:
            prep.ry(theta, 0)
        circuit = library.teleportation(state_prep=prep)
        # Measure Bob's qubit statistics: P(1) must equal sin^2(theta/2).
        reg = circuit.add_clbits(1, name="bob")
        circuit.measure(2, reg[0])
        probs = SIM.exact_probabilities(circuit)
        p_one = sum(p for key, p in probs.items() if key[2] == "1")
        assert abs(p_one - math.sin(theta / 2.0) ** 2) < 1e-9

    def test_state_prep_arity_checked(self):
        from repro.circuits.circuit import QuantumCircuit

        with pytest.raises(CircuitError):
            library.teleportation(state_prep=QuantumCircuit(2))


class TestGrover:
    @pytest.mark.parametrize("n,marked", [(2, [3]), (3, [5]), (3, [1, 6])])
    def test_marked_states_amplified(self, n, marked):
        probs = final_state(library.grover(n, marked)).probabilities()
        marked_keys = {format(m, f"0{n}b") for m in marked}
        marked_mass = sum(probs.get(k, 0.0) for k in marked_keys)
        assert marked_mass > 0.8

    def test_invalid_marked_state(self):
        with pytest.raises(CircuitError):
            library.grover(2, [4])

    def test_empty_marked_rejected(self):
        with pytest.raises(CircuitError):
            library.grover(2, [])


class TestDeutschJozsa:
    def test_constant_oracle_gives_all_zeros(self):
        circuit = library.deutsch_jozsa(3, "constant0")
        probs = final_state(circuit).probabilities()
        input_bits_mass = sum(
            p for key, p in probs.items() if key[:3] == "000"
        )
        assert abs(input_bits_mass - 1.0) < 1e-9

    def test_balanced_oracle_avoids_all_zeros(self):
        circuit = library.deutsch_jozsa(3, "balanced")
        probs = final_state(circuit).probabilities()
        zeros_mass = sum(p for key, p in probs.items() if key[:3] == "000")
        assert zeros_mass < 1e-9

    def test_unknown_oracle(self):
        with pytest.raises(CircuitError):
            library.deutsch_jozsa(2, "weird")


class TestPhaseEstimation:
    @pytest.mark.parametrize("phase,bits", [(0.25, 3), (0.5, 2), (0.125, 3)])
    def test_exact_phases_resolved(self, phase, bits):
        circuit = library.phase_estimation(phase, bits)
        probs = final_state(circuit).probabilities()
        expected_index = round(phase * 2 ** bits)
        expected_key = format(expected_index, f"0{bits}b")
        mass = sum(p for key, p in probs.items() if key[:bits] == expected_key)
        assert mass > 0.99


class TestRandomCircuit:
    def test_reproducible_with_seed(self):
        a = library.random_circuit(3, 5, seed=42)
        b = library.random_circuit(3, 5, seed=42)
        assert [i.name for i in a] == [i.name for i in b]

    def test_clifford_only_restricts_gates(self):
        circuit = library.random_circuit(4, 10, seed=7, clifford_only=True)
        allowed = {"h", "s", "sdg", "x", "y", "z", "cx"}
        assert {inst.name for inst in circuit} <= allowed
