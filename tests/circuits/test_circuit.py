"""Tests for the QuantumCircuit builder."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import CircuitError


class TestConstruction:
    def test_int_args(self):
        qc = QuantumCircuit(3, 2)
        assert (qc.num_qubits, qc.num_clbits) == (3, 2)

    def test_register_args(self):
        qreg = QuantumRegister(2, "a")
        creg = ClassicalRegister(1, "b")
        qc = QuantumCircuit(qreg, creg)
        assert qc.num_qubits == 2
        assert qc.num_clbits == 1

    def test_mixed_args(self):
        qreg = QuantumRegister(2, "a")
        qc = QuantumCircuit(qreg, 1)
        # int arg allocates an anonymous quantum register after 'a'
        assert qc.num_qubits == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_three_ints_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1, 1, 1)

    def test_duplicate_register_name_rejected(self):
        qc = QuantumCircuit(QuantumRegister(1, "dup"))
        with pytest.raises(CircuitError, match="duplicate"):
            qc.add_register(QuantumRegister(2, "dup"))


class TestBuilderMethods:
    def test_every_gate_method_appends(self):
        qc = QuantumCircuit(3)
        qc.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0).sxdg(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u1(0.5, 0)
        qc.u2(0.1, 0.2, 0).u3(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1).cy(0, 1).cz(0, 1).ch(0, 1).swap(0, 1).iswap(0, 1)
        qc.cp(0.1, 0, 1).crx(0.2, 0, 1).cry(0.3, 0, 1).crz(0.4, 0, 1)
        qc.cu3(0.1, 0.2, 0.3, 0, 1).rxx(0.5, 0, 1).rzz(0.6, 0, 1)
        qc.ccx(0, 1, 2).cswap(0, 1, 2)
        assert len(qc) == 33

    def test_gate_on_invalid_qubit_raises(self):
        qc = QuantumCircuit(1)
        with pytest.raises(CircuitError, match="out of range"):
            qc.h(3)

    def test_unitary_gate_append(self):
        qc = QuantumCircuit(1)
        qc.unitary(np.array([[0, 1], [1, 0]]), [0], label="myx")
        assert qc.data[0].name == "myx"

    def test_unitary_arity_mismatch(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="acts on 1 qubit"):
            qc.unitary(np.eye(2), [0, 1])

    def test_measure_pairs(self):
        qc = QuantumCircuit(2, 2)
        qc.measure([0, 1], [0, 1])
        assert [inst.name for inst in qc] == ["measure", "measure"]

    def test_measure_length_mismatch(self):
        qc = QuantumCircuit(2, 2)
        with pytest.raises(CircuitError, match="equal"):
            qc.measure([0, 1], [0])

    def test_measure_all_allocates_register(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.has_measurements()

    def test_barrier_defaults_to_all_qubits(self):
        qc = QuantumCircuit(3)
        qc.barrier()
        assert qc.data[0].qubits == (0, 1, 2)

    def test_conditional_gate(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0, condition=(0, 1))
        assert qc.data[0].condition == (0, 1)

    def test_add_qubits_extends_space(self):
        qc = QuantumCircuit(2)
        reg = qc.add_qubits(2, name="anc")
        assert qc.num_qubits == 4
        assert qc.qubit_index(reg[0]) == 2

    def test_add_zero_qubits_rejected(self):
        qc = QuantumCircuit(1)
        with pytest.raises(CircuitError):
            qc.add_qubits(0)

    def test_register_bit_resolution(self):
        qreg = QuantumRegister(2, "qq")
        qc = QuantumCircuit(qreg)
        qc.h(qreg[1])
        assert qc.data[0].qubits == (1,)

    def test_foreign_bit_rejected(self):
        other = QuantumRegister(1, "other")
        qc = QuantumCircuit(1)
        with pytest.raises(CircuitError, match="not in this circuit"):
            qc.h(other[0])


class TestComposeInverse:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner)
        assert outer.data[0].qubits == (0, 1)

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubits=[2, 0])
        assert outer.data[0].qubits == (2, 0)

    def test_compose_too_large_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_compose_bad_map_size(self):
        inner = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(inner, qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.s(0)
        inv = qc.inverse()
        assert [inst.name for inst in inv] == ["sdg", "h"]

    def test_inverse_of_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(CircuitError, match="non-unitary"):
            qc.inverse()

    def test_power_zero_is_empty(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert len(qc.power(0)) == 0

    def test_power_negative_inverts(self):
        qc = QuantumCircuit(1)
        qc.s(0)
        inv2 = qc.power(-2)
        assert [inst.name for inst in inv2] == ["sdg", "sdg"]

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        other = qc.copy()
        other.x(0)
        assert len(qc) == 1
        assert len(other) == 2


class TestIntrospection:
    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_size_excludes_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().cx(0, 1)
        assert qc.size() == 2
        assert qc.size(include_directives=True) == 3

    def test_depth_series_vs_parallel(self):
        parallel = QuantumCircuit(2)
        parallel.h(0).h(1)
        assert parallel.depth() == 1
        series = QuantumCircuit(1)
        series.h(0).h(0)
        assert series.depth() == 2

    def test_depth_counts_conditions(self):
        qc = QuantumCircuit(2, 1)
        qc.measure(0, 0)
        qc.x(1, condition=(0, 1))  # depends on clbit 0 -> depth 2
        assert qc.depth() == 2

    def test_num_two_qubit_gates(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).ccx(0, 1, 2)
        assert qc.num_two_qubit_gates() == 2

    def test_measured_clbits(self):
        qc = QuantumCircuit(2, 3)
        qc.measure(0, 2)
        qc.measure(1, 0)
        assert qc.measured_clbits() == [0, 2]

    def test_labels(self):
        qc = QuantumCircuit(QuantumRegister(2, "a"), ClassicalRegister(1, "c0"))
        assert qc.qubit_label(1) == "a[1]"
        assert qc.clbit_label(0) == "c0[0]"

    def test_repr(self):
        qc = QuantumCircuit(2, 1, name="demo")
        assert "demo" in repr(qc)
