"""Smoke tests for the ASCII circuit drawer."""

from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.visualization import draw_circuit


class TestDrawer:
    def test_empty_circuit(self):
        qc = QuantumCircuit(name="empty")
        assert "empty" in draw_circuit(qc) or "(empty circuit)" == draw_circuit(qc)

    def test_single_gate(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        art = draw_circuit(qc)
        assert "[H]" in art
        assert "q[0]" in art

    def test_cx_drawing_has_control_and_target(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        art = draw_circuit(qc)
        assert "o" in art
        assert "(+)" in art

    def test_measure_shows_clbit(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        art = draw_circuit(qc)
        assert "M->" in art

    def test_row_count_matches_qubits(self):
        qc = library.ghz_state(4)
        art = draw_circuit(qc)
        label_rows = [line for line in art.splitlines() if "q[" in line]
        assert len(label_rows) == 4

    def test_condition_annotated(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0, condition=(0, 1))
        assert "?" in draw_circuit(qc)

    def test_circuit_draw_method(self):
        qc = library.bell_pair()
        assert qc.draw() == draw_circuit(qc)

    def test_barrier_rendered(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        assert "::" in draw_circuit(qc)
