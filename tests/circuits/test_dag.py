"""Tests for the circuit dependency DAG."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.gates import get_gate
from repro.circuits.instructions import Instruction
from repro.exceptions import CircuitError


def _bell_with_measure():
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    return qc


class TestConstruction:
    def test_node_count(self):
        dag = CircuitDAG(_bell_with_measure())
        assert len(dag) == 4

    def test_topological_order_respects_wires(self):
        dag = CircuitDAG(_bell_with_measure())
        names = [node.instruction.name for node in dag.topological_nodes()]
        assert names.index("h") < names.index("cx")
        assert names.index("cx") < names.index("measure")

    def test_condition_creates_dependency(self):
        qc = QuantumCircuit(2, 1)
        qc.measure(0, 0)
        qc.x(1, condition=(0, 1))
        dag = CircuitDAG(qc)
        names = [node.instruction.name for node in dag.topological_nodes()]
        assert names == ["measure", "x"]
        # The x must depend on the measure through the classical wire.
        nodes = list(dag.topological_nodes())
        assert dag.predecessors_on_wire(nodes[1].node_id, ("c", 0)) is not None

    def test_missing_node_raises(self):
        dag = CircuitDAG(_bell_with_measure())
        with pytest.raises(CircuitError):
            dag.node(999)


class TestWireNavigation:
    def test_successor_on_wire(self):
        dag = CircuitDAG(_bell_with_measure())
        nodes = list(dag.topological_nodes())
        h_node = nodes[0]
        succ = dag.successors_on_wire(h_node.node_id, ("q", 0))
        assert succ.instruction.name == "cx"

    def test_predecessor_on_wire(self):
        dag = CircuitDAG(_bell_with_measure())
        nodes = list(dag.topological_nodes())
        cx_node = next(n for n in nodes if n.instruction.name == "cx")
        pred = dag.predecessors_on_wire(cx_node.node_id, ("q", 0))
        assert pred.instruction.name == "h"
        assert dag.predecessors_on_wire(cx_node.node_id, ("q", 1)) is None


class TestMutation:
    def test_remove_node_reconnects(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.s(0)
        qc.h(0)
        dag = CircuitDAG(qc)
        nodes = list(dag.topological_nodes())
        dag.remove_node(nodes[1].node_id)  # drop the S
        rebuilt = dag.to_circuit(qc)
        assert [inst.name for inst in rebuilt] == ["h", "h"]
        # The two H's must now be wired together.
        remaining = list(dag.topological_nodes())
        succ = dag.successors_on_wire(remaining[0].node_id, ("q", 0))
        assert succ.node_id == remaining[1].node_id

    def test_replace_node_with_chain(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.x(0)
        dag = CircuitDAG(qc)
        nodes = list(dag.topological_nodes())
        x_node = nodes[1]
        replacement = [
            Instruction(get_gate("s"), (0,)),
            Instruction(get_gate("s"), (0,)),
        ]
        dag.replace_node(x_node.node_id, replacement)
        rebuilt = dag.to_circuit(qc)
        assert [inst.name for inst in rebuilt] == ["h", "s", "s"]

    def test_count_ops(self):
        dag = CircuitDAG(_bell_with_measure())
        assert dag.count_ops() == {"h": 1, "cx": 1, "measure": 2}
