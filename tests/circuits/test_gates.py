"""Tests for gate matrices, inverses and decompositions."""

import cmath
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates
from repro.exceptions import GateError


ANGLES = st.floats(
    min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False
)


def _gate_with_random_params(name, rng=None):
    _, num_params, _ = gates._STANDARD[name]
    params = [0.7 + 0.3 * k for k in range(num_params)]
    return gates.get_gate(name, params)


class TestStandardGateMatrices:
    @pytest.mark.parametrize("name", list(gates.standard_gate_names()))
    def test_every_standard_gate_is_unitary(self, name):
        gate = _gate_with_random_params(name)
        assert gates.is_unitary_matrix(gate.matrix)

    @pytest.mark.parametrize("name", list(gates.standard_gate_names()))
    def test_matrix_dimension_matches_arity(self, name):
        gate = _gate_with_random_params(name)
        assert gate.matrix.shape == (2 ** gate.num_qubits, 2 ** gate.num_qubits)

    def test_hadamard_maps_basis_to_plus_minus(self):
        h = gates.h_matrix()
        plus = h @ np.array([1, 0])
        minus = h @ np.array([0, 1])
        np.testing.assert_allclose(plus, [1 / math.sqrt(2)] * 2, atol=1e-12)
        np.testing.assert_allclose(
            minus, [1 / math.sqrt(2), -1 / math.sqrt(2)], atol=1e-12
        )

    def test_cx_truth_table(self):
        cx = gates.cx_matrix()
        # |10> -> |11>, |11> -> |10>, |0x> untouched.
        for source, expected in [(0, 0), (1, 1), (2, 3), (3, 2)]:
            vec = np.zeros(4)
            vec[source] = 1
            out = cx @ vec
            assert abs(out[expected] - 1) < 1e-12

    def test_swap_exchanges_amplitudes(self):
        swap = gates.swap_matrix()
        vec = np.array([0.0, 1.0, 0.0, 0.0])
        np.testing.assert_allclose(swap @ vec, [0, 0, 1, 0], atol=1e-12)

    def test_s_squared_is_z(self):
        np.testing.assert_allclose(
            gates.s_matrix() @ gates.s_matrix(), gates.z_matrix(), atol=1e-12
        )

    def test_t_squared_is_s(self):
        np.testing.assert_allclose(
            gates.t_matrix() @ gates.t_matrix(), gates.s_matrix(), atol=1e-12
        )

    def test_sx_squared_is_x(self):
        np.testing.assert_allclose(
            gates.sx_matrix() @ gates.sx_matrix(), gates.x_matrix(), atol=1e-12
        )

    def test_u3_specialisations(self):
        np.testing.assert_allclose(
            gates.u3_matrix(math.pi / 2, 0.1, 0.2),
            gates.u2_matrix(0.1, 0.2),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            gates.u3_matrix(0.0, 0.0, 0.7), gates.phase_matrix(0.7), atol=1e-12
        )

    def test_rz_equals_phase_up_to_global_phase(self):
        rz = gates.rz_matrix(0.9)
        p = gates.phase_matrix(0.9)
        assert gates.matrices_equal_up_to_phase(rz, p)

    def test_ccx_flips_only_on_both_controls(self):
        ccx = gates.ccx_matrix()
        vec = np.zeros(8)
        vec[0b110] = 1  # controls set, target 0
        out = ccx @ vec
        assert abs(out[0b111] - 1) < 1e-12
        vec = np.zeros(8)
        vec[0b100] = 1  # only one control
        out = ccx @ vec
        assert abs(out[0b100] - 1) < 1e-12

    def test_controlled_matrix_block_structure(self):
        u = gates.h_matrix()
        cu = gates.controlled_matrix(u)
        np.testing.assert_allclose(cu[:2, :2], np.eye(2), atol=1e-12)
        np.testing.assert_allclose(cu[2:, 2:], u, atol=1e-12)

    def test_rzz_diagonal(self):
        theta = 0.5
        mat = gates.rzz_matrix(theta)
        expected = np.diag(
            [
                cmath.exp(-0.5j * theta),
                cmath.exp(0.5j * theta),
                cmath.exp(0.5j * theta),
                cmath.exp(-0.5j * theta),
            ]
        )
        np.testing.assert_allclose(mat, expected, atol=1e-12)


class TestGateRegistry:
    def test_unknown_gate_raises(self):
        with pytest.raises(GateError, match="unknown gate"):
            gates.get_gate("nope")

    def test_wrong_param_count_raises(self):
        with pytest.raises(GateError, match="expects 1 parameter"):
            gates.get_gate("rx")

    def test_gate_equality_uses_params(self):
        assert gates.get_gate("rx", (0.5,)) == gates.get_gate("rx", (0.5,))
        assert gates.get_gate("rx", (0.5,)) != gates.get_gate("rx", (0.6,))

    def test_gate_repr_mentions_name(self):
        assert "rx" in repr(gates.get_gate("rx", (0.5,)))


class TestInverses:
    @pytest.mark.parametrize("name", list(gates.standard_gate_names()))
    def test_inverse_matrix_is_conjugate_transpose(self, name):
        gate = _gate_with_random_params(name)
        inverse = gate.inverse()
        np.testing.assert_allclose(
            inverse.matrix, gate.matrix.conj().T, atol=1e-10
        )

    def test_named_inverses(self):
        assert gates.get_gate("s").inverse().name == "sdg"
        assert gates.get_gate("t").inverse().name == "tdg"
        assert gates.get_gate("h").inverse().name == "h"
        assert gates.get_gate("cx").inverse().name == "cx"

    def test_rotation_inverse_negates_angle(self):
        inv = gates.get_gate("ry", (0.8,)).inverse()
        assert inv.name == "ry"
        assert inv.params == (-0.8,)


class TestUnitaryGate:
    def test_accepts_unitary(self):
        gate = gates.UnitaryGate(gates.h_matrix(), label="myh")
        assert gate.num_qubits == 1
        np.testing.assert_allclose(gate.matrix, gates.h_matrix(), atol=1e-12)

    def test_rejects_non_unitary(self):
        with pytest.raises(GateError, match="unitary"):
            gates.UnitaryGate(np.array([[1, 1], [0, 1]]))

    def test_inverse_roundtrip(self):
        gate = gates.UnitaryGate(gates.t_matrix())
        product = gate.inverse().matrix @ gate.matrix
        np.testing.assert_allclose(product, np.eye(2), atol=1e-12)

    def test_matrix_copy_is_defensive(self):
        gate = gates.UnitaryGate(gates.x_matrix())
        gate.matrix[0, 0] = 99.0
        np.testing.assert_allclose(gate.matrix, gates.x_matrix(), atol=1e-12)


class TestEulerDecompositions:
    @given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
    @settings(max_examples=80, deadline=None)
    def test_u3_angles_roundtrip(self, theta, phi, lam):
        matrix = gates.u3_matrix(theta, phi, lam)
        t, p, l, phase = gates.u3_angles_from_unitary(matrix)
        rebuilt = cmath.exp(1j * phase) * gates.u3_matrix(t, p, l)
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-8)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_unitary_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        # Haar-ish random unitary via QR of a complex Gaussian matrix.
        raw = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        q, r = np.linalg.qr(raw)
        unitary = q @ np.diag(np.diag(r) / np.abs(np.diag(r)))
        t, p, l, phase = gates.u3_angles_from_unitary(unitary)
        rebuilt = cmath.exp(1j * phase) * gates.u3_matrix(t, p, l)
        np.testing.assert_allclose(rebuilt, unitary, atol=1e-8)

    def test_identity_decomposes_to_zero_theta(self):
        t, _p, _l, _phase = gates.euler_zyz_angles(np.eye(2))
        assert abs(t) < 1e-10

    def test_rejects_non_square(self):
        with pytest.raises(GateError):
            gates.euler_zyz_angles(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        with pytest.raises(GateError):
            gates.euler_zyz_angles(np.array([[2, 0], [0, 1]], dtype=complex))


class TestCliffordDetection:
    @pytest.mark.parametrize("name", ["h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap"])
    def test_core_cliffords_detected(self, name):
        gate = gates.get_gate(name)
        assert gates.is_clifford_gate(gate)

    def test_t_gate_is_not_clifford(self):
        assert not gates.is_clifford_gate(gates.get_gate("t"))

    def test_rz_quarter_turn_is_clifford(self):
        assert gates.is_clifford_gate(gates.get_gate("rz", (math.pi / 2,)))
        assert not gates.is_clifford_gate(gates.get_gate("rz", (0.3,)))


class TestOperationClasses:
    def test_measure_shape(self):
        measure = gates.Measure()
        assert (measure.num_qubits, measure.num_clbits) == (1, 1)
        assert not measure.is_gate

    def test_barrier_arity(self):
        assert gates.Barrier(3).num_qubits == 3

    def test_gate_without_matrix_raises(self):
        bare = gates.Gate("custom", 1)
        with pytest.raises(GateError, match="no matrix"):
            _ = bare.matrix
