"""Cross-module property-based tests (hypothesis).

These check global invariants of the stack: assertion circuits never change
passing programs, post-selection algebra is consistent, engines agree with
each other, and the paper's closed-form error probabilities hold over the
whole input space.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.states import state_fidelity
from repro.circuits import library
from repro.circuits.circuit import QuantumCircuit
from repro.core.classical import append_classical_assertion
from repro.core.entanglement import append_parity_assertion
from repro.core.filtering import evaluate_assertions
from repro.core.injector import AssertionInjector
from repro.core.superposition import append_state_assertion
from repro.results.counts import Counts, counts_from_probabilities
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.statevector import StatevectorSimulator

SV = StatevectorSimulator()
DM = DensityMatrixSimulator()

ANGLES = st.floats(min_value=0.0, max_value=math.pi, allow_nan=False)
SEEDS = st.integers(min_value=0, max_value=10 ** 6)


class TestAssertionNonInvasiveness:
    """A passing assertion must leave the program state exactly intact."""

    @given(theta=ANGLES, phi=st.floats(min_value=0.0, max_value=2 * math.pi))
    @settings(max_examples=30, deadline=None)
    def test_state_assertion_preserves_target(self, theta, phi):
        program = QuantumCircuit(1)
        program.u3(theta, phi, 0.0, 0)
        reference = SV.final_statevector(program)
        instrumented = program.copy()
        append_state_assertion(instrumented, 0, theta, phi)
        branches = SV.branches(instrumented)
        assert len(branches) == 1  # deterministic pass
        _prob, _key, state = branches[0]
        from repro.analysis.states import partial_trace

        reduced = partial_trace(state, keep=[0])
        assert state_fidelity(reduced, reference.data) == pytest.approx(
            1.0, abs=1e-9
        )

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_parity_assertion_preserves_random_clifford_ghz(self, seed):
        """Instrument GHZ prepared through a random Clifford basis change
        that commutes with the parity check trivially (identity here), and
        check the assertion passes without disturbing statistics."""
        program = library.ghz_state(3)
        injector = AssertionInjector(program)
        injector.assert_entangled([0, 1, 2], mode="pairwise")
        injector.measure_program()
        result = SV.run(injector.circuit, shots=500, seed=seed)
        report = evaluate_assertions(result.counts, injector.records)
        assert report.pass_rate == pytest.approx(1.0)
        assert set(report.passing) <= {"000", "111"}


class TestClosedFormErrorRates:
    @given(theta=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_classical_assertion_error_rate(self, theta):
        qc = QuantumCircuit(1)
        qc.ry(theta, 0)
        append_classical_assertion(qc, 0, 0)
        probs = SV.exact_probabilities(qc)
        assert probs.get("1", 0.0) == pytest.approx(
            math.sin(theta / 2.0) ** 2, abs=1e-9
        )

    @given(theta=ANGLES, target=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_state_assertion_error_is_infidelity(self, theta, target):
        qc = QuantumCircuit(1)
        qc.ry(theta, 0)
        append_state_assertion(qc, 0, target, 0.0)
        probs = SV.exact_probabilities(qc)
        infidelity = 1.0 - math.cos((theta - target) / 2.0) ** 2
        assert probs.get("1", 0.0) == pytest.approx(infidelity, abs=1e-9)


class TestEngineAgreement:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_sv_and_dm_agree_on_assertion_circuits(self, seed):
        rng = np.random.default_rng(seed)
        program = QuantumCircuit(2)
        program.ry(float(rng.uniform(0, math.pi)), 0)
        program.cx(0, 1)
        append_parity_assertion(program, [0, 1])
        sv_probs = SV.exact_probabilities(program)
        dm_probs = DM.run(program, shots=1).probabilities
        for key in set(sv_probs) | set(dm_probs):
            assert sv_probs.get(key, 0.0) == pytest.approx(
                dm_probs.get(key, 0.0), abs=1e-9
            )


class TestCountsAlgebra:
    @given(
        values=st.lists(
            st.tuples(st.sampled_from(["000", "010", "101", "111"]),
                      st.integers(min_value=1, max_value=500)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_postselect_then_marginal_consistent(self, values):
        data = {}
        for key, count in values:
            data[key] = data.get(key, 0) + count
        counts = Counts(data)
        selected = counts.postselect({0: 0})
        assert selected.shots == sum(
            v for k, v in counts.items() if k[0] == "0"
        )
        reduced = selected.without_bits([0])
        assert reduced.shots == selected.shots
        if reduced:
            assert reduced.num_bits == 2

    @given(
        probs=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2,
                       max_size=4),
        shots=st.integers(min_value=1, max_value=10000),
    )
    @settings(max_examples=40, deadline=None)
    def test_expected_counts_preserve_total(self, probs, shots):
        total = sum(probs)
        distribution = {
            format(i, "02b"): p / total for i, p in enumerate(probs)
        }
        counts = counts_from_probabilities(distribution, shots)
        assert counts.shots == shots

    @given(shots=st.integers(min_value=100, max_value=5000), seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_sampled_counts_preserve_total(self, shots, seed):
        rng = np.random.default_rng(seed)
        counts = counts_from_probabilities(
            {"0": 0.3, "1": 0.7}, shots, rng=rng
        )
        assert counts.shots == shots

    @given(
        values=st.dictionaries(
            st.sampled_from(["00", "01", "10", "11"]),
            st.integers(min_value=1, max_value=100),
            min_size=1,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_distances_are_metrics(self, values):
        counts = Counts(values)
        assert counts.total_variation_distance(counts) == pytest.approx(0.0)
        assert counts.hellinger_distance(counts) == pytest.approx(0.0)
        other = Counts({"00": 1})
        tvd = counts.total_variation_distance(other)
        assert 0.0 <= tvd <= 1.0
        assert tvd == pytest.approx(other.total_variation_distance(counts))


class TestDistributionCacheEquivalence:
    """Cross-call distribution-cache hits must be invisible in the counts.

    The runtime's v2 cache re-samples a stored exact distribution instead
    of re-simulating; for any circuit, shot count and seed, the re-sampled
    histogram must be bit-identical to a fresh dedicated simulation.
    """

    @given(
        circuit_seed=SEEDS,
        run_seed=SEEDS,
        shots=st.integers(min_value=1, max_value=2048),
    )
    @settings(max_examples=15, deadline=None)
    def test_cached_counts_equal_fresh_simulation(
        self, circuit_seed, run_seed, shots
    ):
        from repro.runtime import DistributionCache, execute
        from repro.runtime.provider import get_backend

        program = library.random_circuit(2, 3, seed=circuit_seed)
        program.measure_all()
        backend = get_backend("density_matrix")
        cache = DistributionCache()
        # Prime the cache with an unrelated draw (different seed/shots), so
        # the equivalence below really flows through the stored entry.
        execute(
            program, backend, shots=7, seed=circuit_seed,
            distribution_cache=cache, executor="serial",
        ).result()
        assert cache.stats()["entries"] == 1
        cached_job = execute(
            program, backend, shots=shots, seed=run_seed,
            distribution_cache=cache, executor="serial",
        )
        assert cached_job.cached
        fresh = backend.run(program, shots=shots, seed=run_seed)
        assert dict(cached_job.counts()) == dict(fresh.counts)

    @given(run_seed=SEEDS, chunk_shots=st.integers(min_value=16, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_cached_chunked_counts_equal_fresh_chunked_run(
        self, run_seed, chunk_shots
    ):
        from repro.runtime import DistributionCache, execute
        from repro.runtime.provider import get_backend

        program = library.ghz_state(3)
        program.measure_all()
        backend = get_backend("density_matrix")
        cache = DistributionCache()
        execute(
            program, backend, shots=16, seed=0, distribution_cache=cache,
            executor="serial",
        ).result()
        cached = execute(
            program, backend, shots=512, seed=run_seed, chunk_shots=chunk_shots,
            distribution_cache=cache, executor="serial",
        )
        assert cached.cached
        fresh = execute(
            program, backend, shots=512, seed=run_seed, chunk_shots=chunk_shots,
            executor="serial",
        )
        assert not fresh.cached
        assert dict(cached.counts()) == dict(fresh.counts())

    @given(noise_seed=SEEDS, run_seed=SEEDS)
    @settings(max_examples=5, deadline=None)
    def test_noisy_backend_cached_counts_equal_fresh(self, noise_seed, run_seed):
        from repro.runtime import DistributionCache, execute
        from repro.runtime.provider import get_backend

        program = library.random_circuit(
            2, 2, seed=noise_seed, clifford_only=True
        )
        program.measure_all()
        backend = get_backend("noisy:ibmqx4")
        cache = DistributionCache()
        execute(
            program, backend, shots=32, seed=0, distribution_cache=cache,
            executor="serial",
        ).result()
        cached = execute(
            program, backend, shots=700, seed=run_seed,
            distribution_cache=cache, executor="serial",
        )
        assert cached.cached
        fresh = backend.run(program, shots=700, seed=run_seed)
        assert dict(cached.counts()) == dict(fresh.counts)


class TestTranspilerInvariance:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_transpiled_assertion_circuits_equivalent(self, seed):
        from repro.devices.ibmqx4 import ibmqx4
        from repro.transpiler.passes import transpile_for_device

        program = library.random_circuit(2, 3, seed=seed, clifford_only=True)
        injector = AssertionInjector(program)
        injector.assert_classical(0, 0)
        injector.measure_program()
        device = ibmqx4()
        lowered = transpile_for_device(injector.circuit, device)
        original = SV.exact_probabilities(injector.circuit)
        rewritten = SV.exact_probabilities(lowered)
        for key in set(original) | set(rewritten):
            assert original.get(key, 0.0) == pytest.approx(
                rewritten.get(key, 0.0), abs=1e-9
            )
